// Reproduces the paper's Table I (the joint design space) and Table II
// (the NN <-> accelerator correlation) — the latter empirically, by
// sensitivity analysis through the cost model instead of by assertion:
// for each accelerator parameter and each workload parameter, we perturb
// the workload and report which accelerator resources change their
// pressure (utilization, buffer occupancy) on NVDLA- and Eyeriss-style
// arrays.
//
//   ./build/examples/design_space

#include <cmath>
#include <cstdio>
#include <vector>

#include "arch/presets.hpp"
#include "core/table.hpp"
#include "cost/cost_model.hpp"
#include "mapping/canonical.hpp"
#include "mapping/footprint.hpp"
#include "nn/ofa_space.hpp"

namespace {

using namespace naas;

/// Relative change of x vs base, formatted as a sensitivity marker.
std::string marker(double base, double x, const char* tag) {
  const double rel = std::abs(x - base) / (std::abs(base) + 1e-12);
  return rel > 0.05 ? tag : "";
}

}  // namespace

int main() {
  using core::Table;

  // ----- Table I: the search space ------------------------------------
  std::printf("Table I: Neural-Accelerator architecture search space\n\n");
  Table t1({"Level", "Knobs", "This repo"});
  t1.add_row({"Accelerator", "Compute array size (#rows/#cols)",
              "1D/2D/3D, sizes at stride 2"});
  t1.add_row({"", "(Input/Weight/Output) buffer size",
              "L1/L2 bytes at stride 16"});
  t1.add_row({"", "PE inter-connection (dataflow)",
              "parallel dims from {K,C,Y',X',R,S}"});
  t1.add_row({"Compiler", "Loop order, loop tiling sizes",
              "per-level orders + tile genes"});
  t1.add_row({"Neural net", "#layers, #channels, kernel, input size",
              "OFA-ResNet50 subnet space (~1e13)"});
  std::printf("%s\n", t1.to_string().c_str());
  std::printf("OFA space: 10^%.1f neural architectures\n\n",
              nn::OfaSpace{}.log10_space_size());

  // ----- Table II: correlation via sensitivity ------------------------
  std::printf(
      "Table II: which accelerator resources react to which workload\n"
      "parameters (N = NVDLA-style CxK array, E = Eyeriss-style RxY').\n"
      "Empirical: 2x one workload dimension, mark resources whose\n"
      "utilization or occupancy shifts by >5%%.\n\n");

  const cost::CostModel model;
  // Small enough that no dimension saturates the 12..16-wide arrays —
  // doubling a workload dim then visibly moves the resource it loads.
  const nn::Workload base = nn::make_conv("base", 8, 8, 3, 1, 8);
  struct Variant {
    const char* name;
    nn::Workload layer;
  };
  const Variant variants[] = {
      {"Input channels", nn::make_conv("c2", 16, 8, 3, 1, 8)},
      {"Output channels", nn::make_conv("k2", 8, 16, 3, 1, 8)},
      {"Kernel size", nn::make_conv("r2", 8, 8, 5, 1, 8)},
      {"Feature map", nn::make_conv("y2", 8, 8, 3, 1, 16)},
  };

  Table t2({"Workload param", "Array rows", "Array cols", "L1 occupancy",
            "L2 occupancy"});
  for (const auto& arch : {arch::nvdla_256_arch(), arch::eyeriss_arch()}) {
    const char* tag = arch.name == "NVDLA-256" ? "N" : "E";
    auto probe = [&](const nn::Workload& l) {
      const auto m = mapping::canonical_mapping(arch, l);
      const auto rep = model.evaluate(arch, l, m);
      // Row/col pressure: active extent along each axis.
      const double rows = std::min<double>(
          arch.array_dims[0], l.dim_size(arch.parallel_dims[0]));
      const double cols = std::min<double>(
          arch.array_dims[1], l.dim_size(arch.parallel_dims[1]));
      const auto l1 = mapping::tile_footprint(l, m.pe.tile).total();
      const auto l2 = mapping::tile_footprint(l, m.dram.tile).total();
      (void)rep;
      return std::array<double, 4>{rows, cols, static_cast<double>(l1),
                                   static_cast<double>(l2)};
    };
    const auto b = probe(base);
    for (const auto& v : variants) {
      const auto p = probe(v.layer);
      t2.add_row({std::string(v.name) + " (" + tag + ")",
                  marker(b[0], p[0], tag), marker(b[1], p[1], tag),
                  marker(b[2], p[2], tag), marker(b[3], p[3], tag)});
    }
  }
  std::printf("%s\n", t2.to_string().c_str());
  std::printf(
      "Reading: NVDLA rows follow input channels and cols follow output\n"
      "channels; Eyeriss rows follow kernel size and cols follow the\n"
      "feature map — the correlations of the paper's Table II.\n");
  return 0;
}
