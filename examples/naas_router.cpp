// naas_router — consistent-hash sharding front end for a fleet of
// naas_serve --listen workers.
//
// Speaks the exact single-service line protocol (stdin batches or
// --listen TCP via the stock serve::Server), shards each request line's
// work-unit key — hash of (arch fingerprint, layer shape) — across the
// worker ring, forwards per-owner groups over pooled connections, and
// reassembles responses in request order. Clients cannot tell the fleet
// from one warm naas_serve, byte for byte.
//
// Robustness: health pings mark unresponsive workers down; down workers
// reconnect with exponential backoff; a failed forward (refused, hung,
// reset, injected fault) fails the whole group over to each line's next
// ring worker — safe because evaluations are pure and idempotent — and
// only after every permitted attempt does a line get a structured
// `degraded` error. Requests are never lost and never answered wrongly.
//
// Flags:
//   --workers <list>      REQUIRED: "host:port,host:port,..." (host
//                         defaults to 127.0.0.1)
//   --listen [host:]port  serve over TCP instead of stdin (port 0 picks an
//                         ephemeral port, reported on stderr)
//   --vnodes <n>          ring points per worker (default 64)
//   --connect-timeout-ms <n>    worker connect budget (default 2000)
//   --forward-timeout-ms <n>    total per-forward deadline (default 15000)
//   --max-attempts <n>    distinct workers tried per line (default 3)
//   --ping-interval-ms <n>      background health-check cadence
//                         (default 0 = no health thread; liveness is
//                         still probed inline on the forward path)
//   --ping-timeout-ms <n>       health-probe response budget (default 1000)
//   --reconnect-backoff-ms <n>  base (default 50); doubles per consecutive
//   --reconnect-backoff-cap-ms <n>  failure up to the cap (default 2000)
//   --max-connections / --max-queue / --deadline-ms / --idle-timeout-ms /
//   --max-line-bytes / --max-batch   TCP front-end knobs (as naas_serve)
//   --faults <spec>       arm the deterministic fault injector (sites
//                         router_forward_fail, router_forward_stall,
//                         router_ping_fail; grammar in core/fault.hpp)

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "fleet/router.hpp"
#include "serve/server.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: naas_router --workers <host:port,...> [--listen [host:]port]\n"
      "                   [--vnodes <n>] [--connect-timeout-ms <n>]\n"
      "                   [--forward-timeout-ms <n>] [--max-attempts <n>]\n"
      "                   [--ping-interval-ms <n>] [--ping-timeout-ms <n>]\n"
      "                   [--reconnect-backoff-ms <n>]\n"
      "                   [--reconnect-backoff-cap-ms <n>]\n"
      "                   [--max-connections <n>] [--max-queue <n>]\n"
      "                   [--deadline-ms <n>] [--idle-timeout-ms <n>]\n"
      "                   [--max-line-bytes <n>] [--max-batch <n>]\n"
      "                   [--faults <spec>]\n"
      "protocol: identical to naas_serve (one JSON request per line; blank\n"
      "line submits a batch; --listen for TCP). See docs/serving.md.\n");
  return 2;
}

bool all_whitespace(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

volatile std::sig_atomic_t g_stop = 0;
std::atomic<naas::serve::Server*> g_server{nullptr};

void on_signal(int) {
  g_stop = 1;
  if (naas::serve::Server* s = g_server.load()) s->request_stop();
}

void install_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: a blocked stdin read must EINTR out
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

struct BatchItem {
  std::string line;
  std::string precomputed;  ///< nonempty => protocol-limit rejection
};

naas::serve::Json id_of(const std::string& line) {
  std::string error;
  const naas::serve::Json request = naas::serve::Json::parse(line, &error);
  if (!error.empty() || !request.is_object()) return naas::serve::Json::null();
  const naas::serve::Json* id = request.get("id");
  return id ? *id : naas::serve::Json::null();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace naas;

  fleet::RouterOptions router_options;
  serve::ServerOptions server_options;
  bool listen_mode = false;
  std::string workers_spec;
  std::string faults_spec;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_value = i + 1 < argc;
    if (a == "--workers" && has_value) {
      workers_spec = argv[++i];
    } else if (a == "--listen" && has_value) {
      listen_mode = true;
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        server_options.port = std::atoi(spec.c_str());
      } else {
        server_options.host = spec.substr(0, colon);
        server_options.port = std::atoi(spec.c_str() + colon + 1);
      }
    } else if (a == "--vnodes" && has_value) {
      router_options.vnodes =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--connect-timeout-ms" && has_value) {
      router_options.connect_timeout_ms = std::atoi(argv[++i]);
    } else if (a == "--forward-timeout-ms" && has_value) {
      router_options.forward_timeout_ms = std::atoi(argv[++i]);
    } else if (a == "--max-attempts" && has_value) {
      router_options.max_forward_attempts = std::atoi(argv[++i]);
    } else if (a == "--ping-interval-ms" && has_value) {
      router_options.ping_interval_ms = std::atoll(argv[++i]);
    } else if (a == "--ping-timeout-ms" && has_value) {
      router_options.ping_timeout_ms = std::atoi(argv[++i]);
    } else if (a == "--reconnect-backoff-ms" && has_value) {
      router_options.reconnect_backoff_ms = std::atoll(argv[++i]);
    } else if (a == "--reconnect-backoff-cap-ms" && has_value) {
      router_options.reconnect_backoff_cap_ms = std::atoll(argv[++i]);
    } else if (a == "--max-connections" && has_value) {
      server_options.max_connections = std::atoi(argv[++i]);
    } else if (a == "--max-queue" && has_value) {
      server_options.max_queue_requests =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--deadline-ms" && has_value) {
      server_options.default_deadline_ms = std::atoll(argv[++i]);
    } else if (a == "--idle-timeout-ms" && has_value) {
      server_options.idle_timeout_ms = std::atoll(argv[++i]);
    } else if (a == "--max-line-bytes" && has_value) {
      server_options.max_line_bytes =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--max-batch" && has_value) {
      server_options.max_batch_requests =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--faults" && has_value) {
      faults_spec = argv[++i];
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", a.c_str());
      return usage();
    }
  }
  // The router holds no store; the transport refresh hook is a no-op.
  server_options.refresh_every_batches = 0;

  if (workers_spec.empty()) {
    std::fprintf(stderr, "--workers is required\n");
    return usage();
  }
  std::string err;
  if (!fleet::parse_worker_list(workers_spec, &router_options.workers,
                                &err)) {
    std::fprintf(stderr, "bad --workers list: %s\n", err.c_str());
    return usage();
  }
  if (!faults_spec.empty()) {
    if (!core::FaultInjector::instance().configure(faults_spec, &err)) {
      std::fprintf(stderr, "bad --faults spec: %s\n", err.c_str());
      return usage();
    }
  }

  install_signal_handlers();

  fleet::Router router(router_options);
  std::fprintf(stderr, "router: %lld workers, %lld ring points each\n",
               static_cast<long long>(router.num_workers()),
               static_cast<long long>(router_options.vnodes));

  const serve::Server* finished_server = nullptr;
  serve::Server server(router, server_options);
  if (listen_mode) {
    if (!server.start(&err)) {
      std::fprintf(stderr, "router: %s\n", err.c_str());
      return 1;
    }
    g_server.store(&server);
    if (g_stop) server.request_stop();
    std::fprintf(stderr, "router: listening on %s:%d\n",
                 server_options.host.c_str(), server.port());
    server.run();
    g_server.store(nullptr);
    finished_server = &server;
  } else {
    std::vector<BatchItem> batch;
    std::size_t admitted_in_batch = 0;
    const auto submit = [&] {
      if (batch.empty()) return;
      std::vector<std::string> lines;
      for (const BatchItem& item : batch)
        if (item.precomputed.empty()) lines.push_back(item.line);
      std::vector<std::string> responses = router.handle_lines(lines);
      std::size_t next = 0;
      for (const BatchItem& item : batch) {
        const std::string& response =
            item.precomputed.empty() ? responses[next++] : item.precomputed;
        std::fputs(response.c_str(), stdout);
        std::fputc('\n', stdout);
      }
      std::fflush(stdout);
      batch.clear();
      admitted_in_batch = 0;
    };

    std::string line;
    while (!g_stop && std::getline(std::cin, line)) {
      if (all_whitespace(line)) {
        submit();
      } else if (line.size() > server_options.max_line_bytes) {
        router.note_protocol_reject();
        batch.push_back(
            {std::string(),
             serve::line_too_long_response(server_options.max_line_bytes)
                 .dump()});
      } else if (admitted_in_batch >= server_options.max_batch_requests) {
        router.note_protocol_reject();
        batch.push_back(
            {std::string(),
             serve::batch_too_large_response(
                 id_of(line), server_options.max_batch_requests)
                 .dump()});
      } else {
        batch.push_back({line, std::string()});
        ++admitted_in_batch;
      }
    }
    submit();
  }

  // Exit summary on stderr (stdout carries only responses). The fleet
  // soak greps "degraded:" and "failovers:" to assert fault weather was
  // survived, not avoided.
  const fleet::RouterStats stats = router.stats();
  std::fprintf(stderr,
               "router: %lld lines in %lld batches; %lld groups forwarded "
               "(%lld attempts, %lld failures)\n",
               stats.lines, stats.batches, stats.groups_forwarded,
               stats.forward_attempts, stats.forward_failures);
  std::fprintf(stderr,
               "router: failovers: %lld; degraded: %lld; local: %lld; "
               "unroutable: %lld\n",
               stats.failovers, stats.degraded_lines, stats.local_lines,
               stats.unroutable_lines);
  std::fprintf(stderr,
               "router: health: %lld pings ok, %lld failed; %lld "
               "reconnects; %lld workers marked down\n",
               stats.pings_ok, stats.ping_failures, stats.reconnects,
               stats.workers_marked_down);
  if (finished_server) {
    const serve::ServerStats& net = finished_server->stats();
    std::fprintf(stderr,
                 "router: transport: %lld connections (%lld rejected, %lld "
                 "reset, %lld reaped); %lld lines, %lld batches dispatched\n",
                 net.connections_accepted, net.connections_rejected,
                 net.connections_reset, net.connections_reaped,
                 net.lines_received, net.batches_dispatched);
  }
  if (core::FaultInjector::armed()) {
    const std::string summary = core::FaultInjector::instance().summary();
    if (!summary.empty())
      std::fprintf(stderr, "router: faults consulted: %s\n",
                   summary.c_str());
  }
  return 0;
}
