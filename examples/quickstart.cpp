// Quickstart: search an accelerator + mapping for MobileNetV2 within the
// Eyeriss resource envelope and compare against the Eyeriss baseline.
//
//   ./build/quickstart [iterations] [--cache-path <file>] [--cache-readonly]
//                      [--cost-backend <scalar|avx2|neon|auto>]
//
// With --cache-path, the search warm-starts from the persistent
// mapping-result store at <file> and flushes back to it: a second identical
// run performs zero mapping searches and prints a bit-identical report
// (store diagnostics go to stderr, so stdout stays comparable).
// --cache-readonly loads the store without writing it back — e.g. when
// sharing a store a long-lived naas_serve instance owns (docs/serving.md).
//
// This walks the full public API surface in ~40 lines of user code:
// model zoo -> resource envelope -> run_naas -> inspect the result.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>

#include "arch/presets.hpp"
#include "cost/backend.hpp"
#include "cost/network_cost.hpp"
#include "nn/model_zoo.hpp"
#include "search/accelerator_search.hpp"

int main(int argc, char** argv) {
  using namespace naas;

  int iterations = 10;
  std::string cache_path;
  bool cache_readonly = false;
  std::optional<cost::BackendKind> cost_backend;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache-path") == 0 && i + 1 < argc) {
      cache_path = argv[++i];
    } else if (std::strcmp(argv[i], "--cache-readonly") == 0) {
      cache_readonly = true;
    } else if (std::strcmp(argv[i], "--cost-backend") == 0 && i + 1 < argc) {
      const auto kind = cost::parse_backend_kind(argv[++i]);
      if (!kind || !cost::backend_available(*kind)) {
        std::fprintf(stderr,
                     "bad or unavailable cost backend '%s' "
                     "(scalar|avx2|neon|auto)\n",
                     argv[i]);
        return 2;
      }
      cost_backend = *kind;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr,
                   "unknown flag: %s\n"
                   "usage: quickstart [iterations] [--cache-path <file>] "
                   "[--cache-readonly] [--cost-backend <kind>]\n",
                   argv[i]);
      return 2;
    } else {
      iterations = std::atoi(argv[i]);
      if (iterations <= 0) {
        std::fprintf(stderr, "iterations must be a positive integer, got "
                             "'%s'\n", argv[i]);
        return 2;
      }
    }
  }

  // 1. Pick a workload and a resource envelope (max #PEs, on-chip SRAM,
  //    NoC bandwidth — Section III-A of the paper).
  const nn::Network net = nn::make_mobilenet_v2();
  const arch::ResourceConstraint budget = arch::eyeriss_resources();
  std::printf("workload : %s (%lld MMACs)\n", net.name().c_str(),
              net.total_macs() / 1000000);
  std::printf("envelope : %s\n\n", budget.to_string().c_str());

  // 2. Evaluate the human-designed baseline (Eyeriss, row-stationary).
  const cost::CostModel model;
  const arch::ArchConfig eyeriss = arch::eyeriss_arch();
  const cost::NetworkCost baseline =
      cost::evaluate_network_canonical(model, eyeriss, net);
  std::printf("baseline : %s\n", eyeriss.to_string().c_str());
  std::printf("           latency %.3g cycles, energy %.3g nJ, EDP %.3g\n\n",
              baseline.latency_cycles, baseline.energy_nj, baseline.edp);

  // 3. Run NAAS: outer evolution over the accelerator design space, inner
  //    evolution over per-layer mappings.
  search::NaasOptions opts;
  opts.resources = budget;
  opts.population = 12;
  opts.iterations = iterations;
  opts.mapping.population = 10;
  opts.mapping.iterations = 6;
  opts.seed = 1;
  opts.cache_path = cache_path;
  opts.cache_readonly = cache_readonly;
  opts.cost_backend = cost_backend;
  const search::NaasResult result = search::run_naas(model, opts, {net});
  std::fprintf(stderr, "cost backend: %s\n", result.cost_backend.c_str());
  if (!cache_path.empty())
    std::fprintf(stderr,
                 "store: loaded %lld entries from %s; mapping searches run: "
                 "%lld\n",
                 result.store_entries_loaded, cache_path.c_str(),
                 result.mapping_searches);

  // 4. Inspect the matched design.
  std::printf("searched : %s\n", result.best_arch.to_string().c_str());
  const auto& cost = result.best_networks.front();
  std::printf("           latency %.3g cycles, energy %.3g nJ, EDP %.3g\n",
              cost.latency_cycles, cost.energy_nj, cost.edp);
  std::printf("\nspeedup %.2fx   energy saving %.2fx   EDP reduction %.2fx\n",
              baseline.latency_cycles / cost.latency_cycles,
              baseline.energy_nj / cost.energy_nj, baseline.edp / cost.edp);
  std::printf("search cost: %lld cost-model evals in %.1fs\n",
              result.cost_evaluations, result.wall_seconds);
  return 0;
}
