// naas_serve — long-lived evaluator service over stdin/stdout.
//
// Reads one JSON request per line, answers one JSON response per line, in
// request order. A *blank line* submits everything accumulated since the
// last blank line as one batch (deduplicated, evaluated concurrently); EOF
// submits the remainder and exits. Responses are bit-identical whether
// requests arrive one per batch or all in one batch, and whether the
// answer was computed or served warm from the store — which is what makes
// a scripted session diffable across runs (CI does exactly that).
//
//   echo '{"id":1,"method":"search_mapping","arch":{"preset":"nvdla256"},
//          "layer":{"network":"squeezenet","index":0}}' | naas_serve
//
// Methods: search_mapping, evaluate_mapping, evaluate_network,
// cache_stats, refresh. Full request/response schema: docs/serving.md.
//
// Flags:
//   --cache-path <file>   persistent result store: warm-boot from it,
//                         append new results incrementally after each
//                         batch, adopt other processes' appends
//   --cache-readonly      load the store but never write it back
//   --threads <n>         evaluation threads (0 = hardware default)
//   --refresh-every <n>   store refresh every n batches (default 1;
//                         0 = only at exit / on explicit "refresh")
//   --map-population <n>  mapping-search budget (default 10). Part of the
//   --map-iterations <n>  cache key: share a store only between services
//   --seed <s>            with identical budgets (default 6 iters, seed 1)
//
// The line protocol is deliberately transport-agnostic: the same
// EvalService can sit behind a socket accept loop later; stdin/stdout
// makes it scriptable today.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "serve/service.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: naas_serve [--cache-path <file>] [--cache-readonly]\n"
      "                  [--threads <n>] [--refresh-every <n>]\n"
      "                  [--map-population <n>] [--map-iterations <n>]\n"
      "                  [--seed <s>]\n"
      "protocol: one JSON request per line on stdin; a blank line submits\n"
      "the accumulated requests as one batch; EOF submits the rest.\n"
      "One JSON response per line on stdout, in request order.\n"
      "See docs/serving.md for the request/response schema.\n");
  return 2;
}

bool all_whitespace(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace naas;

  serve::ServeOptions options;
  options.mapping.population = 10;
  options.mapping.iterations = 6;
  long long refresh_every = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_value = i + 1 < argc;
    if (a == "--cache-path" && has_value) {
      options.store_path = argv[++i];
    } else if (a == "--cache-readonly") {
      options.store_readonly = true;
    } else if (a == "--threads" && has_value) {
      options.num_threads = std::atoi(argv[++i]);
    } else if (a == "--refresh-every" && has_value) {
      refresh_every = std::atoll(argv[++i]);
    } else if (a == "--map-population" && has_value) {
      options.mapping.population = std::atoi(argv[++i]);
    } else if (a == "--map-iterations" && has_value) {
      options.mapping.iterations = std::atoi(argv[++i]);
    } else if (a == "--seed" && has_value) {
      options.mapping.seed =
          std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", a.c_str());
      return usage();
    }
  }

  serve::EvalService service(options);
  if (!options.store_path.empty())
    std::fprintf(stderr, "serve: booted with %lld store entries from %s%s\n",
                 static_cast<long long>(
                     service.evaluator().store_entries_loaded()),
                 options.store_path.c_str(),
                 options.store_readonly ? " (readonly)" : "");

  std::vector<std::string> batch;
  long long batches_submitted = 0;
  const auto submit = [&] {
    if (batch.empty()) return;
    for (const std::string& response : service.handle_lines(batch)) {
      std::fputs(response.c_str(), stdout);
      std::fputc('\n', stdout);
    }
    std::fflush(stdout);
    batch.clear();
    ++batches_submitted;
    if (refresh_every > 0 && batches_submitted % refresh_every == 0)
      service.refresh();
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (all_whitespace(line)) {
      submit();
    } else {
      batch.push_back(line);
    }
  }
  submit();

  // Exit summary on stderr (stdout carries only responses). The CI session
  // greps "mapping searches run:" to prove the warm run did zero work.
  const auto& stats = service.stats();
  std::fprintf(stderr,
               "serve: %lld queries in %lld batches (%lld errors); "
               "mapping searches run: %lld; cache entries: %lld\n",
               stats.queries, stats.batches, stats.errors,
               service.evaluator().mapping_searches(),
               static_cast<long long>(service.evaluator().cache_size()));
  std::fprintf(stderr,
               "serve: batched cost model scored %lld CMA generations "
               "(%lld candidates)\n",
               service.evaluator().generations_batched(),
               service.evaluator().candidates_batch_evaluated());
  std::fprintf(stderr,
               "serve: pipeline ran %lld graph tasks; speculation: %lld "
               "hits, %lld wasted\n",
               service.evaluator().tasks_executed(),
               service.evaluator().speculative_hits(),
               service.evaluator().speculative_wasted());
  return 0;
}
