// naas_serve — long-lived evaluator service over stdin/stdout or TCP.
//
// Stdin mode (default): reads one JSON request per line, answers one JSON
// response per line, in request order. A *blank line* submits everything
// accumulated since the last blank line as one batch (deduplicated,
// evaluated concurrently); EOF submits the remainder and exits. Responses
// are bit-identical whether requests arrive one per batch or all in one
// batch, and whether the answer was computed or served warm from the
// store — which is what makes a scripted session diffable across runs (CI
// does exactly that).
//
//   echo '{"id":1,"method":"search_mapping","arch":{"preset":"nvdla256"},
//          "layer":{"network":"squeezenet","index":0}}' | naas_serve
//
// TCP mode (--listen): the same protocol, newline-framed over any number
// of concurrent connections, with request pipelining, per-request
// deadlines, admission-queue load shedding, and slow-client backpressure
// (serve::Server). Responses are byte-identical to stdin mode — the
// server drives the very same EvalService::handle_lines.
//
// Both modes drain gracefully on SIGINT/SIGTERM: finish the requests
// already taken, flush the store, print the summary, exit 0.
//
// Methods: search_mapping, evaluate_mapping, evaluate_network,
// cache_stats, refresh. Full request/response schema: docs/serving.md.
//
// Flags:
//   --cache-path <file>   persistent result store: warm-boot from it,
//                         append new results incrementally after each
//                         batch, adopt other processes' appends
//   --cache-readonly      load the store but never write it back
//   --threads <n>         evaluation threads (0 = hardware default)
//   --refresh-every <n>   store refresh every n batches (default 1;
//                         0 = only at exit / on explicit "refresh")
//   --map-population <n>  mapping-search budget (default 10). Part of the
//   --map-iterations <n>  cache key: share a store only between services
//   --seed <s>            with identical budgets (default 6 iters, seed 1)
//   --listen [host:]port  serve over TCP instead of stdin (port 0 picks an
//                         ephemeral port, reported on stderr)
//   --max-connections <n> TCP: concurrent connection cap (default 256)
//   --max-queue <n>       TCP: admission-queue bound; beyond it requests
//                         are shed with an `overloaded` error (default 4096)
//   --deadline-ms <n>     TCP: default per-request deadline (0 = none; a
//                         request may override with "deadline_ms")
//   --idle-timeout-ms <n> TCP: reap idle connections (0 = never)
//   --max-line-bytes <n>  both modes: request-line length cap (default 1MiB)
//   --max-batch <n>       both modes: requests per batch cap (default 4096)
//   --cost-backend <scalar|avx2|neon|auto>
//                         cost-kernel backend (default auto: CPUID picks
//                         the fastest; responses are identical regardless)
//   --peers <list>        fleet peers ("host:port,host:port,..."): pull
//                         their result-store snapshots at boot (a restarted
//                         worker re-warms without redoing searches) and
//                         again every --peer-pull-every refreshes
//   --peer-pull-every <n> peer pull cadence in store refreshes (default 4;
//                         0 = boot pull only)
//   --faults <spec>       arm the deterministic fault injector (same
//                         grammar as NAAS_FAULTS; see core/fault.hpp)

#include <csignal>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "fleet/replicator.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: naas_serve [--cache-path <file>] [--cache-readonly]\n"
      "                  [--threads <n>] [--refresh-every <n>]\n"
      "                  [--map-population <n>] [--map-iterations <n>]\n"
      "                  [--seed <s>] [--listen [host:]port]\n"
      "                  [--max-connections <n>] [--max-queue <n>]\n"
      "                  [--deadline-ms <n>] [--idle-timeout-ms <n>]\n"
      "                  [--max-line-bytes <n>] [--max-batch <n>]\n"
      "                  [--cost-backend <scalar|avx2|neon|auto>]\n"
      "                  [--peers <host:port,...>] [--peer-pull-every <n>]\n"
      "                  [--faults <spec>]\n"
      "protocol: one JSON request per line on stdin; a blank line submits\n"
      "the accumulated requests as one batch; EOF submits the rest.\n"
      "One JSON response per line on stdout, in request order.\n"
      "With --listen, the same line protocol over TCP (pipelined,\n"
      "deadline- and overload-aware). See docs/serving.md.\n");
  return 2;
}

bool all_whitespace(const std::string& line) {
  for (const char c : line)
    if (c != ' ' && c != '\t' && c != '\r') return false;
  return true;
}

// SIGINT/SIGTERM request a graceful drain. Installed WITHOUT SA_RESTART so
// a blocked stdin read returns with EINTR instead of resuming — the loop
// then falls through to "submit what we have, flush, exit 0". In TCP mode
// the handler pokes the server's (async-signal-safe) stop request.
volatile std::sig_atomic_t g_stop = 0;
std::atomic<naas::serve::Server*> g_server{nullptr};

void on_signal(int) {
  g_stop = 1;
  if (naas::serve::Server* s = g_server.load()) s->request_stop();
}

void install_signal_handlers() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = on_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately not SA_RESTART
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

/// One accumulated stdin request: a raw line for the service, or a
/// precomputed protocol-limit rejection holding that line's response slot
/// (responses must stay in request order either way).
struct BatchItem {
  std::string line;
  std::string precomputed;  ///< nonempty => skip the service
};

naas::serve::Json id_of(const std::string& line) {
  std::string error;
  const naas::serve::Json request = naas::serve::Json::parse(line, &error);
  if (!error.empty() || !request.is_object()) return naas::serve::Json::null();
  const naas::serve::Json* id = request.get("id");
  return id ? *id : naas::serve::Json::null();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace naas;

  serve::ServeOptions options;
  options.mapping.population = 10;
  options.mapping.iterations = 6;
  long long refresh_every = 1;
  serve::ServerOptions server_options;
  bool listen_mode = false;
  std::string faults_spec;
  std::string peers_spec;
  long long peer_pull_every = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const bool has_value = i + 1 < argc;
    if (a == "--cache-path" && has_value) {
      options.store_path = argv[++i];
    } else if (a == "--cache-readonly") {
      options.store_readonly = true;
    } else if (a == "--threads" && has_value) {
      options.num_threads = std::atoi(argv[++i]);
    } else if (a == "--refresh-every" && has_value) {
      refresh_every = std::atoll(argv[++i]);
    } else if (a == "--map-population" && has_value) {
      options.mapping.population = std::atoi(argv[++i]);
    } else if (a == "--map-iterations" && has_value) {
      options.mapping.iterations = std::atoi(argv[++i]);
    } else if (a == "--seed" && has_value) {
      options.mapping.seed =
          std::strtoull(argv[++i], nullptr, 10);
    } else if (a == "--listen" && has_value) {
      listen_mode = true;
      const std::string spec = argv[++i];
      const std::size_t colon = spec.rfind(':');
      if (colon == std::string::npos) {
        server_options.port = std::atoi(spec.c_str());
      } else {
        server_options.host = spec.substr(0, colon);
        server_options.port = std::atoi(spec.c_str() + colon + 1);
      }
    } else if (a == "--max-connections" && has_value) {
      server_options.max_connections = std::atoi(argv[++i]);
    } else if (a == "--max-queue" && has_value) {
      server_options.max_queue_requests =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--deadline-ms" && has_value) {
      server_options.default_deadline_ms = std::atoll(argv[++i]);
    } else if (a == "--idle-timeout-ms" && has_value) {
      server_options.idle_timeout_ms = std::atoll(argv[++i]);
    } else if (a == "--max-line-bytes" && has_value) {
      server_options.max_line_bytes =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--max-batch" && has_value) {
      server_options.max_batch_requests =
          static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (a == "--cost-backend" && has_value) {
      const std::string name = argv[++i];
      const auto kind = cost::parse_backend_kind(name);
      if (!kind) {
        std::fprintf(stderr,
                     "unknown cost backend '%s' (scalar|avx2|neon|auto)\n",
                     name.c_str());
        return usage();
      }
      if (!cost::backend_available(*kind)) {
        std::fprintf(stderr, "cost backend '%s' unavailable on this host\n",
                     name.c_str());
        return 1;
      }
      options.cost_backend = *kind;
    } else if (a == "--peers" && has_value) {
      peers_spec = argv[++i];
    } else if (a == "--peer-pull-every" && has_value) {
      peer_pull_every = std::atoll(argv[++i]);
    } else if (a == "--faults" && has_value) {
      faults_spec = argv[++i];
    } else {
      std::fprintf(stderr, "unknown or incomplete flag: %s\n", a.c_str());
      return usage();
    }
  }
  server_options.refresh_every_batches = refresh_every;

  if (!faults_spec.empty()) {
    std::string err;
    if (!core::FaultInjector::instance().configure(faults_spec, &err)) {
      std::fprintf(stderr, "bad --faults spec: %s\n", err.c_str());
      return usage();
    }
  }

  fleet::ReplicatorOptions repl_options;
  const bool have_peers = !peers_spec.empty();
  if (have_peers) {
    std::string err;
    if (!fleet::parse_worker_list(peers_spec, &repl_options.peers, &err)) {
      std::fprintf(stderr, "bad --peers list: %s\n", err.c_str());
      return usage();
    }
  }

  install_signal_handlers();

  serve::EvalService service(options);
  std::fprintf(stderr, "serve: cost backend: %s\n",
               service.cost_backend_name());
  if (!options.store_path.empty())
    std::fprintf(stderr, "serve: booted with %lld store entries from %s%s\n",
                 static_cast<long long>(
                     service.evaluator().store_entries_loaded()),
                 options.store_path.c_str(),
                 options.store_readonly ? " (readonly)" : "");

  // With peers, serving goes through the replication wrapper: a boot-time
  // pull re-warms a restarted worker from the rest of the fleet, then the
  // refresh cadence keeps pulling. Without peers the wrapper is bypassed
  // entirely (and this block prints nothing — stderr stays byte-stable
  // for the golden-session diffs).
  fleet::ReplicatedService replicated(service, repl_options,
                                      have_peers ? peer_pull_every : 0);
  serve::LineHandler& handler =
      have_peers ? static_cast<serve::LineHandler&>(replicated) : service;
  if (have_peers) {
    const std::size_t adopted = replicated.pull_now();
    std::fprintf(stderr,
                 "serve: peer pull adopted %lld entries from %lld peers\n",
                 static_cast<long long>(adopted),
                 static_cast<long long>(repl_options.peers.size()));
  }

  const serve::Server* finished_server = nullptr;
  serve::Server server(handler, server_options);
  if (listen_mode) {
    std::string err;
    if (!server.start(&err)) {
      std::fprintf(stderr, "serve: %s\n", err.c_str());
      return 1;
    }
    g_server.store(&server);
    if (g_stop) server.request_stop();  // signal raced the publish
    std::fprintf(stderr, "serve: listening on %s:%d\n",
                 server_options.host.c_str(), server.port());
    server.run();  // returns after a graceful drain (final refresh done)
    g_server.store(nullptr);
    finished_server = &server;
  } else {
    std::vector<BatchItem> batch;
    std::size_t admitted_in_batch = 0;  // lines bound for the service
    long long batches_submitted = 0;
    const auto submit = [&] {
      if (batch.empty()) return;
      std::vector<std::string> lines;
      for (const BatchItem& item : batch)
        if (item.precomputed.empty()) lines.push_back(item.line);
      std::vector<std::string> responses = handler.handle_lines(lines);
      std::size_t next = 0;
      for (const BatchItem& item : batch) {
        const std::string& response =
            item.precomputed.empty() ? responses[next++] : item.precomputed;
        std::fputs(response.c_str(), stdout);
        std::fputc('\n', stdout);
      }
      std::fflush(stdout);
      batch.clear();
      admitted_in_batch = 0;
      ++batches_submitted;
      if (refresh_every > 0 && batches_submitted % refresh_every == 0)
        handler.refresh();
    };

    std::string line;
    while (!g_stop && std::getline(std::cin, line)) {
      if (all_whitespace(line)) {
        submit();
      } else if (line.size() > server_options.max_line_bytes) {
        service.note_protocol_reject();
        batch.push_back(
            {std::string(),
             serve::line_too_long_response(server_options.max_line_bytes)
                 .dump()});
      } else if (admitted_in_batch >= server_options.max_batch_requests) {
        // The cap bounds *evaluated* work per submission; already-rejected
        // lines do not use up slots.
        service.note_protocol_reject();
        batch.push_back(
            {std::string(),
             serve::batch_too_large_response(
                 id_of(line), server_options.max_batch_requests)
                 .dump()});
      } else {
        batch.push_back({line, std::string()});
        ++admitted_in_batch;
      }
    }
    // EOF or drain signal: either way, finish what was taken. The final
    // store flush rides the EvalService destructor (plus the per-batch
    // refresh above), so a killed warm server loses no completed results.
    submit();
  }

  // Exit summary on stderr (stdout carries only responses). The CI session
  // greps "mapping searches run:" to prove the warm run did zero work.
  const auto& stats = service.stats();
  std::fprintf(stderr,
               "serve: %lld queries in %lld batches (%lld errors); "
               "mapping searches run: %lld; cache entries: %lld\n",
               stats.queries, stats.batches, stats.errors,
               service.evaluator().mapping_searches(),
               static_cast<long long>(service.evaluator().cache_size()));
  std::fprintf(stderr,
               "serve: batched cost model scored %lld CMA generations "
               "(%lld candidates) on %s backend\n",
               service.evaluator().generations_batched(),
               service.evaluator().candidates_batch_evaluated(),
               service.cost_backend_name());
  std::fprintf(stderr,
               "serve: pipeline ran %lld graph tasks; speculation: %lld "
               "hits, %lld wasted\n",
               service.evaluator().tasks_executed(),
               service.evaluator().speculative_hits(),
               service.evaluator().speculative_wasted());
  std::fprintf(stderr, "serve: surrogate: %lld consults, %lld pruned\n",
               service.evaluator().surrogate_consults(),
               service.evaluator().surrogate_pruned());
  std::fprintf(stderr,
               "serve: robustness: %lld shed, %lld timed out, %lld protocol "
               "rejects; store refresh retries: %lld\n",
               service.requests_shed(), service.requests_timed_out(),
               service.protocol_rejects(), stats.store_refresh_retries);
  if (have_peers) {
    const fleet::ReplicatorStats& rs = replicated.replicator().stats();
    std::fprintf(stderr,
                 "serve: replication: %lld pulls, %lld peer fetches "
                 "(%lld failed, %lld torn), %lld entries adopted\n",
                 rs.pulls, rs.peer_fetches, rs.fetch_failures,
                 rs.torn_fetches, rs.entries_adopted);
  }
  if (finished_server) {
    const serve::ServerStats& net = finished_server->stats();
    std::fprintf(stderr,
                 "serve: transport: %lld connections (%lld rejected, %lld "
                 "reset, %lld reaped); %lld lines, %lld batches dispatched\n",
                 net.connections_accepted, net.connections_rejected,
                 net.connections_reset, net.connections_reaped,
                 net.lines_received, net.batches_dispatched);
  }
  if (core::FaultInjector::armed()) {
    const std::string summary = core::FaultInjector::instance().summary();
    if (!summary.empty())
      std::fprintf(stderr, "serve: faults consulted: %s\n", summary.c_str());
  }
  return 0;
}
