// Dataflow explorer: evaluate one layer under every canonical dataflow and
// every parallel-dimension pairing on a fixed 16x16 array, printing the
// latency / energy / EDP landscape. This is the "why co-search matters"
// demo: no single dataflow wins across layers.
//
//   ./build/examples/dataflow_explorer [layer]
//     layer in {conv3x3, conv1x1, dwconv, fc, stem}; default conv3x3

#include <cstdio>
#include <string>

#include "arch/presets.hpp"
#include "core/table.hpp"
#include "cost/cost_model.hpp"
#include "mapping/canonical.hpp"
#include "search/encoding.hpp"

namespace {

using namespace naas;

nn::Workload pick_layer(const std::string& name) {
  if (name == "conv1x1") return nn::make_conv("conv1x1", 256, 256, 1, 1, 14);
  if (name == "dwconv") return nn::make_dwconv("dwconv", 96, 3, 1, 56);
  if (name == "fc") return nn::make_fc("fc", 2048, 1000);
  if (name == "stem") return nn::make_conv("stem", 3, 64, 7, 2, 112);
  return nn::make_conv("conv3x3", 128, 128, 3, 1, 28);
}

}  // namespace

int main(int argc, char** argv) {
  const nn::Workload layer = pick_layer(argc > 1 ? argv[1] : "conv3x3");
  std::printf("layer: %s\n\n", layer.to_string().c_str());

  const cost::CostModel model;
  core::Table table({"Parallel dims", "Dataflow (orders)", "Latency (cyc)",
                     "Energy (nJ)", "EDP", "Utilization"});

  // Sweep every ordered pair of parallel dims on a 16x16 array, evaluating
  // each with its best canonical dataflow order.
  const auto dims = search::searchable_dims();
  for (nn::Dim a : dims) {
    for (nn::Dim b : dims) {
      if (a == b) continue;
      arch::ArchConfig arch = arch::nvdla_256_arch();
      arch.name = "16x16";
      arch.parallel_dims = {a, b, nn::Dim::kN};
      // keep a structurally valid third (inactive) dim
      for (nn::Dim d : dims)
        if (d != a && d != b) {
          arch.parallel_dims[2] = d;
          break;
        }

      double best_edp = -1;
      const char* best_df = "";
      cost::CostReport best;
      for (auto df : {arch::Dataflow::kWeightStationary,
                      arch::Dataflow::kOutputStationary,
                      arch::Dataflow::kRowStationary}) {
        const auto rep = model.evaluate(
            arch, layer, mapping::canonical_mapping(arch, layer, df));
        if (!rep.legal) continue;
        if (best_edp < 0 || rep.edp < best_edp) {
          best_edp = rep.edp;
          best_df = arch::dataflow_name(df);
          best = rep;
        }
      }
      if (best_edp < 0) continue;
      table.add_row({std::string(nn::dim_name(a)) + "-" + nn::dim_name(b),
                     best_df, core::Table::fmt_sci(best.latency_cycles, 2),
                     core::Table::fmt_sci(best.energy_nj, 2),
                     core::Table::fmt_sci(best.edp, 2),
                     core::Table::fmt(best.pe_utilization, 3)});
    }
  }
  std::printf("%s\n", table.to_string().c_str());
  std::printf(
      "Different layers put different dims on top — run with conv1x1 /\n"
      "dwconv / fc / stem to see the ranking flip. NAAS searches this\n"
      "choice jointly with sizing and mapping instead of fixing it.\n");
  return 0;
}
