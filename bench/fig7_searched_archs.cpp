// Figure 7: the searched architectures themselves. The paper shows three
// qualitative examples — different networks and envelopes yield different
// array shapes, parallel dimensions, and buffer splits:
//   (a) ResNet50 @ Eyeriss resources  -> 2D array, K-X' parallel
//   (b) VGG16    @ EdgeTPU resources  -> 2D array, C-X' parallel, huge L2
//   (c) VGG16    @ ShiDianNao resources -> 3D array, C-K-X' parallel
// We rerun those three searches and print the designs plus their best
// per-layer mapping for the dominant layer.

#include "bench_common.hpp"

#include "search/mapping_search.hpp"

namespace {

using namespace naas;

void show_search(const cost::CostModel& model, const bench::Budget& budget,
                 const nn::Network& net, const arch::ResourceConstraint& rc,
                 const char* paper_result) {
  const auto res = search::run_naas(model, budget.naas_options(rc), {net});
  std::printf("--- %s @ %s resources ---\n", net.name().c_str(),
              rc.name.c_str());
  std::printf("paper found : %s\n", paper_result);
  if (!std::isfinite(res.best_geomean_edp)) {
    std::printf("search failed\n\n");
    return;
  }
  std::printf("this repro  : %s\n", res.best_arch.to_string().c_str());

  // Show the searched mapping for the network's largest layer.
  const auto unique = net.unique_layers();
  const nn::Workload* biggest = &unique.front().first;
  for (const auto& [layer, count] : unique)
    if (layer.macs() > biggest->macs()) biggest = &layer;
  search::MappingSearchOptions mopts;
  mopts.population = budget.map_population;
  mopts.iterations = budget.map_iterations;
  mopts.seed = budget.seed;
  const auto ms = search::search_mapping(model, res.best_arch, *biggest, mopts);
  std::printf("dominant layer %s mapping:\n%s\n",
              biggest->name.c_str(), ms.best.to_string().c_str());
  std::printf("layer EDP %.3g, utilization %.2f\n\n", ms.best_edp,
              ms.report.pe_utilization);
}

void reproduce_fig7(const bench::Budget& budget) {
  bench::print_header("Fig. 7: searched architectures (qualitative)");
  const cost::CostModel model;
  show_search(model, budget, nn::make_resnet50(), arch::eyeriss_resources(),
              "2D 18x10 array, K-X' parallel, L1 496B, L2 107KB");
  show_search(model, budget, nn::make_vgg16(), arch::edge_tpu_resources(),
              "2D 64x66 array, C-X' parallel, L1 256B, L2 7121KB");
  show_search(model, budget, nn::make_vgg16(), arch::shidiannao_resources(),
              "3D 4x6x6 array, C-K-X' parallel, L1 272B, L2 320KB");
  std::printf(
      "Expected shape: distinct parallel-dim choices per scenario, with\n"
      "the small-envelope design trading array size against buffers.\n");
}

void BM_MappingSearchOneLayer(benchmark::State& state) {
  const cost::CostModel model;
  const auto arch = arch::eyeriss_arch();
  const nn::Workload layer = nn::make_conv("c", 128, 256, 3, 1, 28);
  for (auto _ : state) {
    search::MappingSearchOptions opts;
    opts.population = 8;
    opts.iterations = 5;
    const auto res = search::search_mapping(model, arch, layer, opts);
    benchmark::DoNotOptimize(res.best_edp);
  }
}
BENCHMARK(BM_MappingSearchOneLayer)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig7(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
