// Figure 5: speedup and energy saving of the NAAS-searched accelerator
// versus the baseline, when one accelerator is searched per *benchmark set*
// (geomean-EDP reward across the set):
//   large nets  (VGG16, ResNet50, UNet)            vs EdgeTPU, NVDLA-1024
//   small nets  (MobileNetV2, SqueezeNet, MNasNet) vs Eyeriss, NVDLA-256,
//                                                     ShiDianNao
// Paper headline: 2.6x/2.2x speedup on large sets, 4.4x/1.7x/4.4x on small
// sets, with 1.0-4.9x energy savings.

#include "bench_common.hpp"

#include "core/stats.hpp"

namespace {

using namespace naas;

void run_set(const cost::CostModel& model, const bench::Budget& budget,
             const std::vector<nn::Network>& nets,
             const std::vector<arch::ResourceConstraint>& envelopes) {
  for (const auto& rc : envelopes) {
    const arch::ArchConfig baseline = arch::baseline_for(rc);
    const auto res =
        search::run_naas(model, budget.naas_options(rc), nets);
    if (!std::isfinite(res.best_geomean_edp)) {
      std::printf("%s: search failed to find a design\n", rc.name.c_str());
      continue;
    }

    core::Table t({"Network", "Speedup", "Energy saving", "EDP reduction",
                   "EDP red. vs tuned"});
    std::vector<double> speedups, savings, tuned_reds;
    for (std::size_t i = 0; i < nets.size(); ++i) {
      const auto stock = bench::baseline_cost_stock(model, baseline, nets[i]);
      const auto tuned =
          bench::baseline_cost_tuned(model, baseline, nets[i], budget);
      const auto& searched = res.best_networks[i];
      const double speedup = stock.latency_cycles / searched.latency_cycles;
      const double saving = stock.energy_nj / searched.energy_nj;
      speedups.push_back(speedup);
      savings.push_back(saving);
      tuned_reds.push_back(tuned.edp / searched.edp);
      t.add_row({nets[i].name(), core::Table::fmt(speedup, 2),
                 core::Table::fmt(saving, 2),
                 core::Table::fmt(stock.edp / searched.edp, 2),
                 core::Table::fmt(tuned.edp / searched.edp, 2)});
    }
    t.add_row({"Geomean", core::Table::fmt(core::geomean(speedups), 2),
               core::Table::fmt(core::geomean(savings), 2),
               core::Table::fmt(core::geomean(speedups) *
                                    core::geomean(savings),
                                2),
               core::Table::fmt(core::geomean(tuned_reds), 2)});
    std::printf("--- %s resource envelope ---\n", rc.name.c_str());
    std::printf("baseline: %s\n", baseline.to_string().c_str());
    std::printf("searched: %s\n\n%s\n", res.best_arch.to_string().c_str(),
                t.to_string().c_str());
  }
}

void reproduce_fig5(const bench::Budget& budget) {
  bench::print_header(
      "Fig. 5: NAAS vs baselines, one accelerator per benchmark set");
  const cost::CostModel model;

  std::printf(">>> Large models (VGG16, ResNet50, UNet)\n\n");
  run_set(model, budget, nn::large_benchmarks(),
          {arch::edge_tpu_resources(), arch::nvdla_1024_resources()});

  std::printf(">>> Light-weight models (MobileNetV2, SqueezeNet, MNasNet)\n\n");
  run_set(model, budget, nn::small_benchmarks(),
          {arch::eyeriss_resources(), arch::nvdla_256_resources(),
           arch::shidiannao_resources()});
}

void BM_NetworkEvaluationCanonical(benchmark::State& state) {
  const cost::CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Network net = nn::make_mobilenet_v2();
  for (auto _ : state) {
    const auto nc = cost::evaluate_network_canonical(model, arch, net);
    benchmark::DoNotOptimize(nc.edp);
  }
}
BENCHMARK(BM_NetworkEvaluationCanonical)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig5(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
