// Figure 9: importance-based versus index-based encoding of the
// non-numerical search knobs. Four combinations of (hardware encoding,
// mapping encoding); the paper reports EDP reductions of 1.4x (both index)
// up to 7.4x (both importance) relative to the baseline.
//
// Canonical-mapping seeding is disabled in the inner loop so the ablation
// measures raw search quality, not the seeds.

#include "bench_common.hpp"

namespace {

using namespace naas;

void reproduce_fig9(const bench::Budget& budget) {
  bench::print_header(
      "Fig. 9: importance-based vs index-based encoding ablation");

  const cost::CostModel model;
  const nn::Network net = nn::make_mobilenet_v2();
  const auto rc = arch::eyeriss_resources();
  const auto base =
      bench::baseline_cost_stock(model, arch::baseline_for(rc), net);

  struct Combo {
    const char* hw;
    const char* map;
    search::OrderEncoding hw_enc;
    search::OrderEncoding map_enc;
  };
  const Combo combos[] = {
      {"Index", "Index", search::OrderEncoding::kIndex,
       search::OrderEncoding::kIndex},
      {"Index", "Importance", search::OrderEncoding::kIndex,
       search::OrderEncoding::kImportance},
      {"Importance", "Index", search::OrderEncoding::kImportance,
       search::OrderEncoding::kIndex},
      {"Importance", "Importance", search::OrderEncoding::kImportance,
       search::OrderEncoding::kImportance},
  };

  core::Table t({"HW encoding", "Mapping encoding", "EDP reduction"});
  for (const auto& combo : combos) {
    search::NaasOptions opts = budget.naas_options(rc);
    opts.hw_encoding = combo.hw_enc;
    opts.mapping.encoding.order_encoding = combo.map_enc;
    opts.mapping.seed_canonical = false;
    opts.seed_baseline = false;  // measure raw search quality
    const auto res = search::run_naas(model, opts, {net});
    const double reduction = std::isfinite(res.best_geomean_edp)
                                 ? base.edp / res.best_networks[0].edp
                                 : 0.0;
    t.add_row({combo.hw, combo.map, core::Table::fmt(reduction, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expected shape (paper): importance-importance best (7.4x), any\n"
      "index encoding degrades, index-index worst (1.4x).\n");
}

void BM_ImportanceDecode(benchmark::State& state) {
  std::array<double, 6> imp{0.3, 0.9, 0.1, 0.5, 0.7, 0.2};
  for (auto _ : state) {
    auto order = search::order_from_importance(imp);
    benchmark::DoNotOptimize(order[0]);
  }
}
BENCHMARK(BM_ImportanceDecode);

void BM_IndexDecode(benchmark::State& state) {
  double g = 0.371;
  for (auto _ : state) {
    auto order = search::order_from_index(g);
    benchmark::DoNotOptimize(order[0]);
    g += 1e-6;
    if (g >= 1.0) g = 0.0;
  }
}
BENCHMARK(BM_IndexDecode);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig9(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
