// Transformer workload smoke: the matmul/attention kinds through the full
// stack — batch==scalar bit-identity on BERT/ViT/LLM-decode layer shapes,
// network evaluation of the three transformer zoo families, and
// warm-start-from-store bit-identity with zero mapping searches. Emits
// BENCH_transformer.json; CI asserts batch_identical_to_scalar and
// warm_zero_searches.

#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/serialize.hpp"
#include "core/timer.hpp"
#include "mapping/canonical.hpp"
#include "mapping/legality.hpp"

namespace {

using namespace naas;

/// The unique dense shapes of the transformer zoo: a BERT-base block at
/// seq 128, the ViT-B/16 patch embed (the conv bridge), and LLaMA-7B-class
/// decode slices against a 2k KV cache.
std::vector<nn::Workload> transformer_layers() {
  return {
      nn::make_matmul("bert_qkv_proj", 128, 768, 768),
      nn::make_matmul("bert_ffn_up", 128, 768, 3072),
      nn::make_attention_scores("bert_attn_qk", 128, 128, 64, 12),
      nn::make_attention_context("bert_attn_av", 128, 128, 64, 12),
      nn::make_conv("vit_patch_embed", 3, 768, 16, 16, 14),
      nn::make_matmul("llm_q_proj", 1, 4096, 4096),
      nn::make_attention_scores("llm_attn_qk", 1, 2048, 128, 32),
      nn::make_attention_context("llm_attn_av", 1, 2048, 128, 32),
      nn::make_matmul("llm_ffn_up", 1, 4096, 11008),
  };
}

std::vector<mapping::Mapping> make_candidates(core::Rng& rng,
                                              const arch::ArchConfig& arch,
                                              const nn::Workload& layer,
                                              int count) {
  std::vector<nn::Dim> dims;
  for (nn::Dim d : nn::all_dims()) dims.push_back(d);
  std::vector<mapping::Mapping> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    mapping::Mapping m;
    rng.shuffle(dims);
    for (std::size_t p = 0; p < dims.size(); ++p) m.dram.order[p] = dims[p];
    rng.shuffle(dims);
    for (std::size_t p = 0; p < dims.size(); ++p) m.pe.order[p] = dims[p];
    rng.shuffle(dims);
    for (std::size_t p = 0; p < dims.size(); ++p) m.pe_order[p] = dims[p];
    for (nn::Dim d : nn::all_dims())
      mapping::set_tile(m.dram.tile, d,
                        rng.uniform_int(1, layer.dim_size(d)));
    for (nn::Dim d : nn::all_dims())
      mapping::set_tile(m.pe.tile, d, 1);
    out.push_back(mapping::repair(m, layer, arch));
  }
  return out;
}

std::string serialize_report(const cost::CostReport& r) {
  core::ByteWriter w;
  w.u8(r.legal ? 1 : 0);
  w.str(r.illegal_reason);
  for (double v : {r.macs, r.compute_cycles, r.noc_cycles, r.dram_cycles,
                   r.latency_cycles, r.energy.mac_pj, r.energy.l1_pj,
                   r.energy.l2_pj, r.energy.noc_pj, r.energy.dram_pj,
                   r.energy_nj, r.edp, r.pe_utilization, r.dram_bytes,
                   r.l2_read_bytes, r.l2_write_bytes, r.l1_access_bytes,
                   r.noc_delivery_bytes, r.reduction_hop_bytes})
    w.f64(v);
  return w.bytes();
}

/// Batch==scalar bit-identity across every transformer layer shape.
bool check_batch_identity(const cost::CostModel& model,
                          const arch::ArchConfig& arch) {
  core::Rng rng(static_cast<std::uint64_t>(core::env_int("NAAS_BENCH_SEED",
                                                         1)));
  bool identical = true;
  for (const nn::Workload& layer : transformer_layers()) {
    const auto cands = make_candidates(rng, arch, layer, 96);
    std::vector<std::string> scalar;
    for (const auto& m : cands)
      scalar.push_back(serialize_report(model.evaluate(arch, layer, m)));
    const cost::LayerContext ctx = model.make_context(arch, layer);
    for (std::size_t bs : {std::size_t{1}, std::size_t{8}, std::size_t{32}}) {
      std::vector<cost::CostReport> reports(cands.size());
      for (std::size_t lo = 0; lo < cands.size(); lo += bs) {
        const std::size_t len = std::min(bs, cands.size() - lo);
        model.evaluate_batch(
            ctx, std::span<const mapping::Mapping>(cands).subspan(lo, len),
            std::span<cost::CostReport>(reports).subspan(lo, len));
      }
      for (std::size_t i = 0; i < reports.size(); ++i)
        if (serialize_report(reports[i]) != scalar[i]) identical = false;
    }
  }
  return identical;
}

struct NetRow {
  std::string name;
  int layers = 0;
  int unique_searches = 0;
  double edp = 0;
  double latency = 0;
  double wall_cold_s = 0;
  double wall_warm_s = 0;
  bool warm_zero_searches = false;
  bool warm_bit_identical = false;
};

void reproduce_transformer() {
  bench::print_header(
      "Transformer workloads: matmul/attention through the full stack");

  const cost::CostModel model;
  const arch::ArchConfig arch = arch::nvdla_256_arch();
  const bool identical = check_batch_identity(model, arch);
  std::printf("batch == scalar on transformer shapes: %s\n\n",
              identical ? "bit-identical" : "MISMATCH (BUG)");

  const bench::Budget budget = bench::Budget::from_env();
  search::MappingSearchOptions mopts;
  mopts.population = budget.map_population;
  mopts.iterations = budget.map_iterations;
  mopts.seed = budget.seed;

  const char* zoo[] = {"bert_base_encoder", "vit_b16_encoder", "llm_decode"};
  std::vector<NetRow> rows;
  for (const char* name : zoo) {
    const nn::Network net = nn::make_network(name);
    const std::string store = std::string("BENCH_transformer_") + name +
                              ".store.bin";
    std::remove(store.c_str());
    NetRow row;
    row.name = name;
    row.layers = net.num_layers();

    core::Timer cold_timer;
    search::ArchEvaluator cold(model, mopts);
    const cost::NetworkCost cold_cost = cold.evaluate(arch, net);
    row.wall_cold_s = cold_timer.seconds();
    row.unique_searches = static_cast<int>(cold.mapping_searches());
    row.edp = cold_cost.edp;
    row.latency = cold_cost.latency_cycles;
    search::flush_to_store(cold, store, /*readonly=*/false);

    core::Timer warm_timer;
    search::ArchEvaluator warm(model, mopts);
    search::warm_start_from_store(warm, store);
    const cost::NetworkCost warm_cost = warm.evaluate(arch, net);
    row.wall_warm_s = warm_timer.seconds();
    row.warm_zero_searches = warm.mapping_searches() == 0;
    row.warm_bit_identical =
        warm_cost.edp == cold_cost.edp &&
        warm_cost.latency_cycles == cold_cost.latency_cycles &&
        warm_cost.energy_nj == cold_cost.energy_nj;
    std::remove(store.c_str());
    rows.push_back(row);
  }

  core::Table t({"Network", "Layers", "Unique searches", "EDP",
                 "Warm zero-search", "Warm bit-identical"});
  for (const NetRow& r : rows)
    t.add_row({r.name, core::Table::fmt_int(r.layers),
               core::Table::fmt_int(r.unique_searches),
               core::Table::fmt_sci(r.edp),
               r.warm_zero_searches ? "yes" : "NO (BUG)",
               r.warm_bit_identical ? "yes" : "NO (BUG)"});
  std::printf("%s\n", t.to_string().c_str());

  bool warm_zero = true, warm_identical = true;
  for (const NetRow& r : rows) {
    warm_zero = warm_zero && r.warm_zero_searches;
    warm_identical = warm_identical && r.warm_bit_identical;
  }

  FILE* f = std::fopen("BENCH_transformer.json", "w");
  if (!f) {
    std::printf("could not open BENCH_transformer.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"transformer\",\n");
  std::fprintf(f, "  \"arch\": \"%s\",\n", arch.name.c_str());
  std::fprintf(f, "  \"batch_identical_to_scalar\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"warm_zero_searches\": %s,\n",
               warm_zero ? "true" : "false");
  std::fprintf(f, "  \"warm_bit_identical\": %s,\n",
               warm_identical ? "true" : "false");
  std::fprintf(f, "  \"networks\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const NetRow& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"layers\": %d, "
                 "\"unique_searches\": %d, \"edp\": %.6e, "
                 "\"latency_cycles\": %.6e, \"wall_cold_s\": %.3f, "
                 "\"wall_warm_s\": %.3f}%s\n",
                 r.name.c_str(), r.layers, r.unique_searches, r.edp,
                 r.latency, r.wall_cold_s, r.wall_warm_s,
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_transformer.json\n");
}

void BM_EvaluateBatchAttentionDecode(benchmark::State& state) {
  // The bandwidth-dominated shape: one query token against a 2k KV cache.
  const cost::CostModel model;
  const arch::ArchConfig arch = arch::nvdla_256_arch();
  const nn::Workload layer =
      nn::make_attention_scores("qk", 1, 2048, 128, 32);
  core::Rng rng(1);
  const auto cands = make_candidates(rng, arch, layer, 64);
  const cost::LayerContext ctx = model.make_context(arch, layer);
  std::vector<cost::CostReport> reports(cands.size());
  for (auto _ : state) {
    model.evaluate_batch(ctx, cands, reports);
    benchmark::DoNotOptimize(reports.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(cands.size()));
}
BENCHMARK(BM_EvaluateBatchAttentionDecode)->Unit(benchmark::kMicrosecond);

void BM_EvaluateBatchBertMatmul(benchmark::State& state) {
  const cost::CostModel model;
  const arch::ArchConfig arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_matmul("ffn", 128, 768, 3072);
  core::Rng rng(1);
  const auto cands = make_candidates(rng, arch, layer, 64);
  const cost::LayerContext ctx = model.make_context(arch, layer);
  std::vector<cost::CostReport> reports(cands.size());
  for (auto _ : state) {
    model.evaluate_batch(ctx, cands, reports);
    benchmark::DoNotOptimize(reports.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(cands.size()));
}
BENCHMARK(BM_EvaluateBatchBertMatmul)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_transformer();
  return naas::bench::run_microbenchmarks(argc, argv);
}
