// Async task-graph pipeline: per-candidate barrier scheduling vs one
// interleaved task graph on a mixed-layer workload, plus the speculative
// next-generation prefetch. Emits BENCH_async.json for CI trend tracking.
//
// Two properties are asserted, not assumed:
//  - bit_identical_to_barrier: the interleaved graph (4 threads) produces
//    exactly the per-candidate sequential engine's EDPs and work meters;
//  - speculation_hit_only: run_naas with speculation on (1 and 4 threads)
//    matches the speculation-off run bit for bit — speculation can warm
//    the cache, never change an answer.
// The pool-idle-fraction comparison is the perf story: a barrier between
// candidates parks every worker on the slowest layer chain's tail, the
// interleaved graph keeps them fed. (On a 1-core CI box both fractions
// collapse toward the same value; the assert is the *no-worse* direction,
// the reduction shows on multi-core hosts.)

#include "bench_common.hpp"

#include <cmath>
#include <cstdio>
#include <limits>

#include "core/task_graph.hpp"
#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "nn/layer.hpp"

namespace {

using namespace naas;

/// Deliberately heterogeneous layer set: a heavyweight stem conv, a mid
/// conv, a depthwise layer, and a tiny FC — the straggler mix where
/// barrier scheduling wastes the most pool time.
nn::Network mixed_network() {
  nn::Network net("bench-mixed", {});
  net.add(nn::make_conv("stem", 3, 64, 7, 2, 112));
  net.add(nn::make_conv("mid", 64, 128, 3, 1, 28));
  net.add(nn::make_dwconv("dw", 96, 3, 1, 56));
  net.add(nn::make_conv("tail", 128, 256, 3, 1, 14));
  net.add(nn::make_fc("fc", 1024, 1000));
  return net;
}

std::vector<arch::ArchConfig> candidate_population() {
  return {arch::nvdla_256_arch(), arch::eyeriss_arch(),
          arch::shidiannao_arch(), arch::nvdla_1024_arch(),
          arch::edge_tpu_arch()};
}

struct ModeResult {
  std::vector<double> edps;
  long long cost_evaluations = 0;
  long long mapping_searches = 0;
  long long tasks_executed = 0;
  double idle_fraction = 0;
  double wall_seconds = 0;
};

/// Old-engine shape: one candidate at a time, each evaluate() a fork-join
/// on the pool (a barrier between candidates).
ModeResult run_barrier(const cost::CostModel& model,
                       const search::MappingSearchOptions& mopts,
                       const std::vector<arch::ArchConfig>& archs,
                       const nn::Network& net) {
  core::ThreadPool pool(4);
  search::ArchEvaluator evaluator(model, mopts, &pool);
  core::Timer timer;
  ModeResult out;
  for (const auto& arch : archs)
    out.edps.push_back(evaluator.geomean_edp(arch, {net}));
  out.wall_seconds = timer.seconds();
  out.cost_evaluations = evaluator.cost_evaluations();
  out.mapping_searches = evaluator.mapping_searches();
  out.tasks_executed = evaluator.tasks_executed();
  out.idle_fraction = evaluator.scheduler_stats().idle_fraction();
  return out;
}

/// Async engine: the whole population on one interleaved task graph.
ModeResult run_async(const cost::CostModel& model,
                     const search::MappingSearchOptions& mopts,
                     const std::vector<arch::ArchConfig>& archs,
                     const nn::Network& net) {
  core::ThreadPool pool(4);
  search::ArchEvaluator evaluator(model, mopts, &pool);
  core::Timer timer;
  ModeResult out;
  out.edps = evaluator.evaluate_population(archs, {net});
  out.wall_seconds = timer.seconds();
  out.cost_evaluations = evaluator.cost_evaluations();
  out.mapping_searches = evaluator.mapping_searches();
  out.tasks_executed = evaluator.tasks_executed();
  out.idle_fraction = evaluator.scheduler_stats().idle_fraction();
  return out;
}

bool same_naas_outcome(const search::NaasResult& a,
                       const search::NaasResult& b) {
  bool same = a.best_geomean_edp == b.best_geomean_edp &&
              search::arch_fingerprint(a.best_arch) ==
                  search::arch_fingerprint(b.best_arch) &&
              a.cost_evaluations == b.cost_evaluations &&
              a.mapping_searches == b.mapping_searches &&
              a.population_best_edp == b.population_best_edp &&
              a.population_mean_edp == b.population_mean_edp &&
              a.best_networks.size() == b.best_networks.size();
  if (same) {
    for (std::size_t i = 0; i < a.best_networks.size(); ++i)
      same = same &&
             a.best_networks[i].edp == b.best_networks[i].edp &&
             a.best_networks[i].latency_cycles ==
                 b.best_networks[i].latency_cycles &&
             a.best_networks[i].energy_nj == b.best_networks[i].energy_nj;
  }
  return same;
}

void reproduce_async(const bench::Budget& budget) {
  bench::print_header(
      "Async pipeline: barrier-between-candidates vs interleaved graph");

  const cost::CostModel model;
  const nn::Network net = mixed_network();
  const auto archs = candidate_population();
  search::MappingSearchOptions mopts;
  mopts.population = budget.map_population;
  mopts.iterations = budget.map_iterations;
  mopts.seed = budget.seed;

  const ModeResult barrier = run_barrier(model, mopts, archs, net);
  const ModeResult async = run_async(model, mopts, archs, net);

  const bool identical =
      barrier.edps == async.edps &&
      barrier.cost_evaluations == async.cost_evaluations &&
      barrier.mapping_searches == async.mapping_searches;

  core::Table t({"Mode", "Wall (s)", "Graph tasks", "Pool idle fraction",
                 "Cost evals"});
  t.add_row({"barrier (per-candidate joins)",
             core::Table::fmt(barrier.wall_seconds, 3),
             core::Table::fmt_int(barrier.tasks_executed),
             core::Table::fmt(barrier.idle_fraction, 3),
             core::Table::fmt_int(barrier.cost_evaluations)});
  t.add_row({"async (one interleaved graph)",
             core::Table::fmt(async.wall_seconds, 3),
             core::Table::fmt_int(async.tasks_executed),
             core::Table::fmt(async.idle_fraction, 3),
             core::Table::fmt_int(async.cost_evaluations)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("bit-identical to barrier engine: %s\n",
              identical ? "yes" : "NO (BUG)");

  // Speculative prefetch: the same search with speculation off, on at one
  // thread, and on at four threads must be indistinguishable in every
  // visible output — speculation is hit-only by construction. The scenario
  // is a *convergent* regime (sizing-only genome, large population, enough
  // generations for CMA to concentrate): the decode-bucket predictor can
  // only cash when the distribution's top joint cells carry real mass, so
  // a diffuse 14-gene opening phase would show a structurally-zero hit
  // rate and prove nothing. Here the hit rate is positive for every seed
  // we've swept, which makes the divergence check meaningful too.
  bench::print_header("Speculation: on/off and 1/4-thread divergence check");
  search::NaasOptions nopts = budget.naas_options(arch::eyeriss_resources());
  nopts.population = 20;
  nopts.iterations = 15;
  nopts.mapping.population = 6;
  nopts.mapping.iterations = 3;
  nopts.search_connectivity = false;
  const std::vector<nn::Network> nets{net};

  search::NaasOptions off = nopts;
  off.speculate = false;
  off.num_threads = 1;
  const auto res_off = search::run_naas(model, off, nets);

  search::NaasOptions on1 = nopts;
  on1.speculate = true;
  on1.num_threads = 1;
  const auto res_on1 = search::run_naas(model, on1, nets);

  search::NaasOptions on4 = on1;
  on4.num_threads = 4;
  const auto res_on4 = search::run_naas(model, on4, nets);

  const bool hit_only = same_naas_outcome(res_off, res_on1) &&
                        same_naas_outcome(res_off, res_on4);

  std::printf("speculation off:        %lld searches, %lld spec hits, %lld "
              "wasted\n",
              res_off.mapping_searches, res_off.speculative_hits,
              res_off.speculative_wasted);
  std::printf("speculation on (1 thr): %lld searches, %lld spec hits, %lld "
              "wasted\n",
              res_on1.mapping_searches, res_on1.speculative_hits,
              res_on1.speculative_wasted);
  std::printf("speculation on (4 thr): %lld searches, %lld spec hits, %lld "
              "wasted\n",
              res_on4.mapping_searches, res_on4.speculative_hits,
              res_on4.speculative_wasted);
  std::printf("speculation hit-only (zero divergence): %s\n",
              hit_only ? "yes" : "NO (BUG)");

  FILE* f = std::fopen("BENCH_async.json", "w");
  if (!f) {
    std::printf("could not open BENCH_async.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"async_pipeline\",\n");
  std::fprintf(f, "  \"scenario\": \"mixed_layer_population\",\n");
  std::fprintf(f, "  \"network\": \"%s\",\n", net.name().c_str());
  std::fprintf(f, "  \"candidates\": %zu,\n", archs.size());
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n",
               core::ThreadPool::default_num_threads());
  std::fprintf(f, "  \"barrier_wall_seconds\": %.6f,\n",
               barrier.wall_seconds);
  std::fprintf(f, "  \"async_wall_seconds\": %.6f,\n", async.wall_seconds);
  std::fprintf(f, "  \"barrier_idle_fraction\": %.4f,\n",
               barrier.idle_fraction);
  std::fprintf(f, "  \"async_idle_fraction\": %.4f,\n", async.idle_fraction);
  std::fprintf(f, "  \"idle_fraction_reduction\": %.4f,\n",
               barrier.idle_fraction - async.idle_fraction);
  std::fprintf(f, "  \"barrier_tasks_executed\": %lld,\n",
               barrier.tasks_executed);
  std::fprintf(f, "  \"async_tasks_executed\": %lld,\n",
               async.tasks_executed);
  std::fprintf(f, "  \"speculation_scenario\": \"sizing_only_pop20_it15\",\n");
  std::fprintf(f, "  \"speculative_searches\": %lld,\n",
               res_on1.mapping_searches);
  std::fprintf(f, "  \"speculative_hits\": %lld,\n",
               res_on1.speculative_hits);
  std::fprintf(f, "  \"speculative_wasted\": %lld,\n",
               res_on1.speculative_wasted);
  std::fprintf(f, "  \"bit_identical_to_barrier\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"speculation_hit_only\": %s\n",
               hit_only ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_async.json\n");
}

void BM_TaskGraphSubmitRun(benchmark::State& state) {
  core::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<double> out(512);
  for (auto _ : state) {
    core::TaskGraph graph(&pool);
    for (std::size_t i = 0; i < out.size(); ++i)
      graph.submit([&out, i] { out[i] = static_cast<double>(i) * 1.5; });
    graph.run();
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_TaskGraphSubmitRun)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_AsyncPopulation(benchmark::State& state) {
  const cost::CostModel model;
  const nn::Network net = mixed_network();
  const auto archs = candidate_population();
  search::MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 2;
  const bool barrier_mode = state.range(0) == 0;
  for (auto _ : state) {
    if (barrier_mode) {
      const auto r = run_barrier(model, mopts, archs, net);
      benchmark::DoNotOptimize(r.edps.data());
    } else {
      const auto r = run_async(model, mopts, archs, net);
      benchmark::DoNotOptimize(r.edps.data());
    }
  }
}
BENCHMARK(BM_AsyncPopulation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_async(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
