// Parallel evaluation engine scaling: serial-vs-parallel wall time and
// evaluations/sec for the fig6-style single-network NAAS search, plus the
// layer-deduplication constant-factor win. Emits BENCH_parallel.json for
// CI trend tracking.
//
// Determinism is asserted, not assumed: every multi-threaded run's
// best_geomean_edp is compared bit-for-bit against the serial run before
// the numbers are reported.

#include "bench_common.hpp"

#include <algorithm>

#include "core/thread_pool.hpp"

namespace {

using namespace naas;

struct ScalingRun {
  int num_threads = 1;
  double wall_seconds = 0;
  long long cost_evaluations = 0;
  double evals_per_sec = 0;
  double speedup = 1.0;
  double best_geomean_edp = 0;
  bool bit_identical_to_serial = true;
};

std::vector<int> thread_counts() {
  std::vector<int> counts{1, 2, 4};
  const int hw = core::ThreadPool::default_num_threads();
  if (std::find(counts.begin(), counts.end(), hw) == counts.end())
    counts.push_back(hw);
  return counts;
}

void reproduce_scaling(const bench::Budget& budget) {
  bench::print_header(
      "Parallel scaling: fig6 single-network search, 1..N threads");

  const cost::CostModel model;
  const std::vector<nn::Network> nets{nn::make_squeezenet()};
  const auto rc = arch::nvdla_256_resources();

  std::vector<ScalingRun> runs;
  for (int t : thread_counts()) {
    search::NaasOptions opts = budget.naas_options(rc);
    opts.num_threads = t;
    const auto res = search::run_naas(model, opts, nets);
    ScalingRun run;
    run.num_threads = t;
    run.wall_seconds = res.wall_seconds;
    run.cost_evaluations = res.cost_evaluations;
    run.evals_per_sec = res.wall_seconds > 0
                            ? res.cost_evaluations / res.wall_seconds
                            : 0;
    run.best_geomean_edp = res.best_geomean_edp;
    if (!runs.empty()) {
      run.speedup = runs.front().wall_seconds / run.wall_seconds;
      run.bit_identical_to_serial =
          res.best_geomean_edp == runs.front().best_geomean_edp &&
          res.cost_evaluations == runs.front().cost_evaluations;
    }
    runs.push_back(run);
  }

  core::Table t({"Threads", "Wall (s)", "Evals/s", "Speedup",
                 "Identical to serial"});
  for (const auto& r : runs) {
    t.add_row({core::Table::fmt_int(r.num_threads),
               core::Table::fmt(r.wall_seconds, 3),
               core::Table::fmt_int(static_cast<long long>(r.evals_per_sec)),
               core::Table::fmt(r.speedup, 2),
               r.bit_identical_to_serial ? "yes" : "NO (BUG)"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("hardware_concurrency on this machine: %d\n",
              core::ThreadPool::default_num_threads());

  // Layer deduplication: repeated blocks collapse to unique shapes, so the
  // per-layer mapping search cost scales with unique shapes, not depth.
  bench::print_header("Layer deduplication on repeated-block networks");
  search::MappingSearchOptions mopts;
  mopts.population = budget.map_population;
  mopts.iterations = budget.map_iterations;
  mopts.seed = budget.seed;

  struct DedupRow {
    std::string network;
    int layers = 0;
    int unique = 0;
    long long searches = 0;
  };
  std::vector<DedupRow> dedup_rows;
  core::Table d({"Network", "Layers", "Unique shapes", "Mapping searches",
                 "Dedup factor"});
  const auto arch = arch::nvdla_256_arch();
  for (const auto& net :
       {nn::make_resnet50(), nn::make_mobilenet_v2(), nn::make_squeezenet()}) {
    search::ArchEvaluator evaluator(model, mopts);
    evaluator.evaluate(arch, net);
    DedupRow row;
    row.network = net.name();
    row.layers = net.num_layers();
    row.unique = static_cast<int>(net.unique_layers().size());
    row.searches = evaluator.mapping_searches();
    dedup_rows.push_back(row);
    d.add_row({row.network, core::Table::fmt_int(row.layers),
               core::Table::fmt_int(row.unique),
               core::Table::fmt_int(row.searches),
               core::Table::fmt(static_cast<double>(row.layers) /
                                    static_cast<double>(row.searches),
                                2)});
  }
  std::printf("%s\n", d.to_string().c_str());

  // Machine-readable record for trend tracking (scripts/bench.sh collects
  // BENCH_*.json artifacts).
  FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (!f) {
    std::printf("could not open BENCH_parallel.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(f, "  \"scenario\": \"fig6_single_network\",\n");
  std::fprintf(f, "  \"network\": \"%s\",\n", nets.front().name().c_str());
  std::fprintf(f, "  \"envelope\": \"%s\",\n", rc.name.c_str());
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n",
               core::ThreadPool::default_num_threads());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f,
                 "    {\"num_threads\": %d, \"wall_seconds\": %.6f, "
                 "\"cost_evaluations\": %lld, \"evals_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"bit_identical_to_serial\": %s}%s\n",
                 r.num_threads, r.wall_seconds, r.cost_evaluations,
                 r.evals_per_sec, r.speedup,
                 r.bit_identical_to_serial ? "true" : "false",
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"layer_dedup\": [\n");
  for (std::size_t i = 0; i < dedup_rows.size(); ++i) {
    const auto& r = dedup_rows[i];
    std::fprintf(f,
                 "    {\"network\": \"%s\", \"layers\": %d, "
                 "\"unique_shapes\": %d, \"mapping_searches\": %lld}%s\n",
                 r.network.c_str(), r.layers, r.unique, r.searches,
                 i + 1 < dedup_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_parallel.json\n");
}

void BM_ParallelForOverhead(benchmark::State& state) {
  core::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<double> out(1024);
  for (auto _ : state) {
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_EvaluatePopulation(benchmark::State& state) {
  const cost::CostModel model;
  const std::vector<nn::Network> nets{nn::make_cifar_net()};
  search::MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 2;
  const std::vector<arch::ArchConfig> archs{
      arch::nvdla_256_arch(), arch::eyeriss_arch(), arch::shidiannao_arch(),
      arch::nvdla_1024_arch()};
  core::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // Fresh evaluator per iteration: measures cold-cache population
    // scoring, the outer-loop unit of work.
    search::ArchEvaluator evaluator(model, mopts, &pool);
    const auto edps = evaluator.evaluate_population(archs, nets);
    benchmark::DoNotOptimize(edps.data());
  }
}
BENCHMARK(BM_EvaluatePopulation)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_scaling(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
