// Parallel evaluation engine scaling: serial-vs-parallel wall time and
// evaluations/sec for the fig6-style single-network NAAS search, plus the
// layer-deduplication constant-factor win and the persistent-store
// warm-start win. Emits BENCH_parallel.json and BENCH_warm_start.json for
// CI trend tracking.
//
// Determinism is asserted, not assumed: every multi-threaded run's
// best_geomean_edp is compared bit-for-bit against the serial run, and the
// warm-started run against the cold run, before the numbers are reported.

#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>

#include "core/thread_pool.hpp"

namespace {

using namespace naas;

struct ScalingRun {
  int num_threads = 1;
  double wall_seconds = 0;
  long long cost_evaluations = 0;
  double evals_per_sec = 0;
  double speedup = 1.0;
  double best_geomean_edp = 0;
  bool bit_identical_to_serial = true;
};

std::vector<int> thread_counts() {
  std::vector<int> counts{1, 2, 4};
  const int hw = core::ThreadPool::default_num_threads();
  if (std::find(counts.begin(), counts.end(), hw) == counts.end())
    counts.push_back(hw);
  return counts;
}

void reproduce_scaling(const bench::Budget& budget) {
  bench::print_header(
      "Parallel scaling: fig6 single-network search, 1..N threads");

  const cost::CostModel model;
  const std::vector<nn::Network> nets{nn::make_squeezenet()};
  const auto rc = arch::nvdla_256_resources();

  std::vector<ScalingRun> runs;
  for (int t : thread_counts()) {
    search::NaasOptions opts = budget.naas_options(rc);
    opts.num_threads = t;
    const auto res = search::run_naas(model, opts, nets);
    ScalingRun run;
    run.num_threads = t;
    run.wall_seconds = res.wall_seconds;
    run.cost_evaluations = res.cost_evaluations;
    run.evals_per_sec = res.wall_seconds > 0
                            ? res.cost_evaluations / res.wall_seconds
                            : 0;
    run.best_geomean_edp = res.best_geomean_edp;
    if (!runs.empty()) {
      run.speedup = runs.front().wall_seconds / run.wall_seconds;
      run.bit_identical_to_serial =
          res.best_geomean_edp == runs.front().best_geomean_edp &&
          res.cost_evaluations == runs.front().cost_evaluations;
    }
    runs.push_back(run);
  }

  core::Table t({"Threads", "Wall (s)", "Evals/s", "Speedup",
                 "Identical to serial"});
  for (const auto& r : runs) {
    t.add_row({core::Table::fmt_int(r.num_threads),
               core::Table::fmt(r.wall_seconds, 3),
               core::Table::fmt_int(static_cast<long long>(r.evals_per_sec)),
               core::Table::fmt(r.speedup, 2),
               r.bit_identical_to_serial ? "yes" : "NO (BUG)"});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf("hardware_concurrency on this machine: %d\n",
              core::ThreadPool::default_num_threads());

  // Layer deduplication: repeated blocks collapse to unique shapes, so the
  // per-layer mapping search cost scales with unique shapes, not depth.
  bench::print_header("Layer deduplication on repeated-block networks");
  search::MappingSearchOptions mopts;
  mopts.population = budget.map_population;
  mopts.iterations = budget.map_iterations;
  mopts.seed = budget.seed;

  struct DedupRow {
    std::string network;
    int layers = 0;
    int unique = 0;
    long long searches = 0;
  };
  std::vector<DedupRow> dedup_rows;
  core::Table d({"Network", "Layers", "Unique shapes", "Mapping searches",
                 "Dedup factor"});
  const auto arch = arch::nvdla_256_arch();
  for (const auto& net :
       {nn::make_resnet50(), nn::make_mobilenet_v2(), nn::make_squeezenet()}) {
    search::ArchEvaluator evaluator(model, mopts);
    evaluator.evaluate(arch, net);
    DedupRow row;
    row.network = net.name();
    row.layers = net.num_layers();
    row.unique = static_cast<int>(net.unique_layers().size());
    row.searches = evaluator.mapping_searches();
    dedup_rows.push_back(row);
    d.add_row({row.network, core::Table::fmt_int(row.layers),
               core::Table::fmt_int(row.unique),
               core::Table::fmt_int(row.searches),
               core::Table::fmt(static_cast<double>(row.layers) /
                                    static_cast<double>(row.searches),
                                2)});
  }
  std::printf("%s\n", d.to_string().c_str());

  // Warm start via the persistent result store: the same search, run cold
  // (store file absent, flushed at exit) and then warm (store loaded at
  // startup). The warm run must perform zero mapping searches and report a
  // bit-identical outcome.
  bench::print_header("Warm start: persistent on-disk mapping-result store");
  const char* store_path = "BENCH_warm_cache.bin";
  std::remove(store_path);
  search::NaasOptions wopts = budget.naas_options(rc);
  wopts.cache_path = store_path;
  const auto cold = search::run_naas(model, wopts, nets);
  const auto warm = search::run_naas(model, wopts, nets);
  std::remove(store_path);

  bool warm_identical = warm.best_geomean_edp == cold.best_geomean_edp &&
                        warm.population_best_edp == cold.population_best_edp &&
                        warm.population_mean_edp == cold.population_mean_edp;
  if (!cold.best_networks.empty() && !warm.best_networks.empty())
    warm_identical = warm_identical && warm.best_networks.front().edp ==
                                           cold.best_networks.front().edp;
  const bool warm_zero_searches = warm.mapping_searches == 0;

  core::Table w({"Run", "Wall (s)", "Mapping searches", "Cost evals",
                 "Store entries loaded"});
  w.add_row({"cold", core::Table::fmt(cold.wall_seconds, 3),
             core::Table::fmt_int(cold.mapping_searches),
             core::Table::fmt_int(cold.cost_evaluations),
             core::Table::fmt_int(cold.store_entries_loaded)});
  w.add_row({"warm", core::Table::fmt(warm.wall_seconds, 3),
             core::Table::fmt_int(warm.mapping_searches),
             core::Table::fmt_int(warm.cost_evaluations),
             core::Table::fmt_int(warm.store_entries_loaded)});
  std::printf("%s\n", w.to_string().c_str());
  std::printf("warm speedup: %.2fx   zero searches on warm: %s   "
              "bit-identical to cold: %s\n",
              warm.wall_seconds > 0 ? cold.wall_seconds / warm.wall_seconds
                                    : 0.0,
              warm_zero_searches ? "yes" : "NO (BUG)",
              warm_identical ? "yes" : "NO (BUG)");

  FILE* wf = std::fopen("BENCH_warm_start.json", "w");
  if (wf) {
    std::fprintf(wf, "{\n");
    std::fprintf(wf, "  \"bench\": \"warm_start\",\n");
    std::fprintf(wf, "  \"scenario\": \"fig6_single_network\",\n");
    std::fprintf(wf, "  \"network\": \"%s\",\n", nets.front().name().c_str());
    std::fprintf(wf, "  \"envelope\": \"%s\",\n", rc.name.c_str());
    std::fprintf(wf, "  \"cold_wall_seconds\": %.6f,\n", cold.wall_seconds);
    std::fprintf(wf, "  \"warm_wall_seconds\": %.6f,\n", warm.wall_seconds);
    std::fprintf(wf, "  \"warm_speedup\": %.3f,\n",
                 warm.wall_seconds > 0
                     ? cold.wall_seconds / warm.wall_seconds
                     : 0.0);
    std::fprintf(wf, "  \"cold_mapping_searches\": %lld,\n",
                 cold.mapping_searches);
    std::fprintf(wf, "  \"warm_mapping_searches\": %lld,\n",
                 warm.mapping_searches);
    std::fprintf(wf, "  \"warm_store_entries_loaded\": %lld,\n",
                 warm.store_entries_loaded);
    std::fprintf(wf, "  \"zero_searches_on_warm\": %s,\n",
                 warm_zero_searches ? "true" : "false");
    std::fprintf(wf, "  \"bit_identical_to_cold\": %s\n",
                 warm_identical ? "true" : "false");
    std::fprintf(wf, "}\n");
    std::fclose(wf);
    std::printf("wrote BENCH_warm_start.json\n");
  }

  // Machine-readable record for trend tracking (scripts/bench.sh collects
  // BENCH_*.json artifacts).
  FILE* f = std::fopen("BENCH_parallel.json", "w");
  if (!f) {
    std::printf("could not open BENCH_parallel.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"parallel_scaling\",\n");
  std::fprintf(f, "  \"scenario\": \"fig6_single_network\",\n");
  std::fprintf(f, "  \"network\": \"%s\",\n", nets.front().name().c_str());
  std::fprintf(f, "  \"envelope\": \"%s\",\n", rc.name.c_str());
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n",
               core::ThreadPool::default_num_threads());
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& r = runs[i];
    std::fprintf(f,
                 "    {\"num_threads\": %d, \"wall_seconds\": %.6f, "
                 "\"cost_evaluations\": %lld, \"evals_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"bit_identical_to_serial\": %s}%s\n",
                 r.num_threads, r.wall_seconds, r.cost_evaluations,
                 r.evals_per_sec, r.speedup,
                 r.bit_identical_to_serial ? "true" : "false",
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"layer_dedup\": [\n");
  for (std::size_t i = 0; i < dedup_rows.size(); ++i) {
    const auto& r = dedup_rows[i];
    std::fprintf(f,
                 "    {\"network\": \"%s\", \"layers\": %d, "
                 "\"unique_shapes\": %d, \"mapping_searches\": %lld}%s\n",
                 r.network.c_str(), r.layers, r.unique, r.searches,
                 i + 1 < dedup_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote BENCH_parallel.json\n");
}

void BM_ParallelForOverhead(benchmark::State& state) {
  core::ThreadPool pool(static_cast<int>(state.range(0)));
  std::vector<double> out(1024);
  for (auto _ : state) {
    pool.parallel_for(out.size(), [&](std::size_t i) {
      out[i] = static_cast<double>(i) * 1.5;
    });
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMicrosecond);

void BM_EvaluatePopulation(benchmark::State& state) {
  const cost::CostModel model;
  const std::vector<nn::Network> nets{nn::make_cifar_net()};
  search::MappingSearchOptions mopts;
  mopts.population = 6;
  mopts.iterations = 2;
  const std::vector<arch::ArchConfig> archs{
      arch::nvdla_256_arch(), arch::eyeriss_arch(), arch::shidiannao_arch(),
      arch::nvdla_1024_arch()};
  core::ThreadPool pool(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    // Fresh evaluator per iteration: measures cold-cache population
    // scoring, the outer-loop unit of work.
    search::ArchEvaluator evaluator(model, mopts, &pool);
    const auto edps = evaluator.evaluate_population(archs, nets);
    benchmark::DoNotOptimize(edps.data());
  }
}
BENCHMARK(BM_EvaluatePopulation)->Arg(1)->Arg(4)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_scaling(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
