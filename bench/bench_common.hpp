#pragma once

// Shared plumbing for the per-figure/table bench binaries.
//
// Every binary follows the same shape:
//   1. deterministically regenerate the paper's table/figure data with
//      scaled-down search budgets (NAAS_BENCH_FULL=1 selects paper-scale
//      budgets; NAAS_BENCH_SEED overrides the seed), then
//   2. run google-benchmark microbenchmarks of the kernels involved.
//
// Baseline methodology (matches the paper): a baseline accelerator runs
// its *native dataflow* with tiling optimized per layer (tiling-only
// mapping search, canonical loop orders); NAAS additionally searches
// connectivity, loop orders, and the architectural sizing.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "arch/presets.hpp"
#include "arch/resources.hpp"
#include "core/env.hpp"
#include "core/table.hpp"
#include "cost/network_cost.hpp"
#include "nn/model_zoo.hpp"
#include "search/accelerator_search.hpp"

namespace naas::bench {

/// Search budgets used by all benches; scaled by NAAS_BENCH_FULL.
struct Budget {
  int hw_population;
  int hw_iterations;
  int map_population;
  int map_iterations;
  std::uint64_t seed;

  static Budget from_env() {
    const bool full = core::env_flag("NAAS_BENCH_FULL", false);
    Budget b;
    b.hw_population = full ? 16 : 10;
    b.hw_iterations = full ? 20 : 8;
    b.map_population = full ? 12 : 8;
    b.map_iterations = full ? 10 : 5;
    b.seed = static_cast<std::uint64_t>(core::env_int("NAAS_BENCH_SEED", 1));
    return b;
  }

  search::NaasOptions naas_options(const arch::ResourceConstraint& rc) const {
    search::NaasOptions opts;
    opts.resources = rc;
    opts.population = hw_population;
    opts.iterations = hw_iterations;
    opts.seed = seed;
    opts.mapping.population = map_population;
    opts.mapping.iterations = map_iterations;
    opts.mapping.seed = seed;
    return opts;
  }
};

/// Stock baseline cost: native dataflow, canonical orders, greedy maximal
/// tiling — the accelerator exactly as its standard compiler maps it. This
/// is the paper's comparison point ("2.6x faster than EdgeTPU").
inline cost::NetworkCost baseline_cost_stock(const cost::CostModel& model,
                                             const arch::ArchConfig& baseline,
                                             const nn::Network& net) {
  return cost::evaluate_network_canonical(model, baseline, net);
}

/// Tuned baseline cost: same fixed dataflow but with per-layer tiling
/// search (the strongest mapping a fixed-dataflow accelerator could get).
/// Reported alongside the stock number so readers see how much of NAAS's
/// gain survives against a well-tuned baseline compiler.
inline cost::NetworkCost baseline_cost_tuned(const cost::CostModel& model,
                                             const arch::ArchConfig& baseline,
                                             const nn::Network& net,
                                             const Budget& budget) {
  search::MappingSearchOptions mopts;
  mopts.population = budget.map_population;
  mopts.iterations = budget.map_iterations;
  mopts.seed = budget.seed;
  mopts.encoding.search_order = false;
  mopts.encoding.fixed_dataflow = arch::native_dataflow(baseline);
  mopts.seed_canonical = false;
  search::ArchEvaluator evaluator(model, mopts);
  return evaluator.evaluate(baseline, net);
}

/// Prints a section header in a uniform style.
inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n\n");
}

/// Runs registered google-benchmark microbenchmarks after the table.
inline int run_microbenchmarks(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace naas::bench
