// Serving throughput: the naas_serve query path measured end to end
// (JSON parse -> batch dedup -> evaluator -> JSON response), cold vs warm
// from the persistent store, and batched vs one-at-a-time submission.
// Emits BENCH_serve.json for CI trend tracking.
//
// Determinism is asserted, not assumed: batched responses are compared
// byte-for-byte against one-at-a-time responses, warm responses against
// cold ones, and the warm service must perform zero mapping searches.
//
// One-at-a-time submission models a client that round-trips per query: the
// service pays its per-submission costs (batch setup, store refresh) per
// query. Batched submission pays them once and lets the fan-out and the
// in-flight dedup amortize the rest. On a 1-core container the spread
// comes from amortization alone; with more cores the batch fan-out
// compounds it.

#include "bench_common.hpp"

#include <cstdio>
#include <string>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "serve/service.hpp"

namespace {

using namespace naas;

/// search_mapping request lines over every layer of the benchmark nets on
/// one preset arch, repeated `repeats` times (repeats exercise the cache /
/// in-flight dedup exactly as a production query mix with popular layers
/// would).
std::vector<std::string> make_session(int repeats) {
  std::vector<std::string> lines;
  int id = 0;
  for (int r = 0; r < repeats; ++r) {
    for (const char* net : {"squeezenet", "mobilenetv2"}) {
      const int layers = nn::make_network(net).num_layers();
      for (int i = 0; i < layers; ++i) {
        serve::Json req = serve::Json::object();
        req.set("id", serve::Json::integer(++id));
        req.set("method", serve::Json::string("search_mapping"));
        serve::Json arch = serve::Json::object();
        arch.set("preset", serve::Json::string("nvdla256"));
        req.set("arch", std::move(arch));
        serve::Json layer = serve::Json::object();
        layer.set("network", serve::Json::string(net));
        layer.set("index", serve::Json::integer(i));
        req.set("layer", std::move(layer));
        lines.push_back(req.dump());
      }
    }
  }
  return lines;
}

serve::ServeOptions serve_options(const bench::Budget& budget,
                                  const std::string& store_path) {
  serve::ServeOptions opts;
  opts.mapping.population = budget.map_population;
  opts.mapping.iterations = budget.map_iterations;
  opts.mapping.seed = budget.seed;
  opts.store_path = store_path;
  return opts;
}

struct Run {
  double wall_seconds = 0;
  double qps = 0;
  long long mapping_searches = 0;
  std::vector<std::string> responses;
};

/// One query per submission: each line is its own batch, followed by the
/// per-submission store refresh the serve driver performs.
Run run_single(const serve::ServeOptions& opts,
               const std::vector<std::string>& lines) {
  serve::EvalService service(opts);
  Run run;
  run.responses.reserve(lines.size());
  core::Timer timer;
  for (const std::string& line : lines) {
    run.responses.push_back(service.handle_line(line));
    service.refresh();
  }
  run.wall_seconds = timer.seconds();
  run.qps = run.wall_seconds > 0 ? lines.size() / run.wall_seconds : 0;
  run.mapping_searches = service.evaluator().mapping_searches();
  return run;
}

/// Everything in one batch, one refresh.
Run run_batch(const serve::ServeOptions& opts,
              const std::vector<std::string>& lines) {
  serve::EvalService service(opts);
  Run run;
  core::Timer timer;
  run.responses = service.handle_lines(lines);
  service.refresh();
  run.wall_seconds = timer.seconds();
  run.qps = run.wall_seconds > 0 ? lines.size() / run.wall_seconds : 0;
  run.mapping_searches = service.evaluator().mapping_searches();
  return run;
}

void reproduce_serving(const bench::Budget& budget) {
  bench::print_header(
      "Serving throughput: cold vs warm store, batch vs single submission");

  const char* store_path = "BENCH_serve_store.bin";
  // Cold phase: searches dominate. Warm phase: pure query-path throughput,
  // so use more repeats for stable timing.
  const std::vector<std::string> cold_lines = make_session(1);
  const std::vector<std::string> warm_lines = make_session(8);

  std::remove(store_path);
  const Run cold_single = run_single(serve_options(budget, store_path),
                                     cold_lines);
  std::remove(store_path);
  const Run cold_batch = run_batch(serve_options(budget, store_path),
                                   cold_lines);
  // cold_batch's store stays on disk: the warm runs boot from it. Batch
  // runs first so any residual warm-up bias favors the single phase — a
  // conservative ordering for the reported batch speedup.
  const Run warm_batch = run_batch(serve_options(budget, store_path),
                                   warm_lines);
  const Run warm_single = run_single(serve_options(budget, store_path),
                                     warm_lines);
  std::remove(store_path);

  const bool batch_identical_to_single =
      cold_batch.responses == cold_single.responses &&
      warm_batch.responses == warm_single.responses;
  // Warm responses repeat the cold session 4x: every repeat must match the
  // cold answers byte for byte.
  bool warm_identical_to_cold = true;
  for (std::size_t i = 0; i < warm_batch.responses.size(); ++i) {
    // ids differ across repeats; compare payload after the id prefix.
    const std::string& w = warm_batch.responses[i];
    const std::string& c = cold_batch.responses[i % cold_lines.size()];
    warm_identical_to_cold = warm_identical_to_cold &&
                             w.substr(w.find("\"ok\"")) ==
                                 c.substr(c.find("\"ok\""));
  }
  const bool zero_searches_on_warm = warm_single.mapping_searches == 0 &&
                                     warm_batch.mapping_searches == 0;

  core::Table t({"Phase", "Queries", "Wall (s)", "Queries/s",
                 "Mapping searches"});
  const auto add = [&t](const char* phase, std::size_t n, const Run& run) {
    t.add_row({phase, core::Table::fmt_int(static_cast<long long>(n)),
               core::Table::fmt(run.wall_seconds, 3),
               core::Table::fmt_int(static_cast<long long>(run.qps)),
               core::Table::fmt_int(run.mapping_searches)});
  };
  add("cold single", cold_lines.size(), cold_single);
  add("cold batch", cold_lines.size(), cold_batch);
  add("warm single", warm_lines.size(), warm_single);
  add("warm batch", warm_lines.size(), warm_batch);
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "batch speedup: %.2fx cold, %.2fx warm   warm/cold speedup "
      "(batch): %.1fx\n"
      "zero searches on warm: %s   batch==single: %s   warm==cold: %s\n",
      cold_single.wall_seconds > 0
          ? cold_single.wall_seconds / cold_batch.wall_seconds
          : 0.0,
      warm_single.qps > 0 ? warm_batch.qps / warm_single.qps : 0.0,
      warm_batch.wall_seconds > 0
          ? (cold_batch.wall_seconds / cold_lines.size()) /
                (warm_batch.wall_seconds / warm_lines.size())
          : 0.0,
      zero_searches_on_warm ? "yes" : "NO (BUG)",
      batch_identical_to_single ? "yes" : "NO (BUG)",
      warm_identical_to_cold ? "yes" : "NO (BUG)");

  FILE* f = std::fopen("BENCH_serve.json", "w");
  if (!f) {
    std::printf("could not open BENCH_serve.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"serve_throughput\",\n");
  std::fprintf(f, "  \"envelope\": \"nvdla256\",\n");
  std::fprintf(f, "  \"networks\": [\"squeezenet\", \"mobilenetv2\"],\n");
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n",
               core::ThreadPool::default_num_threads());
  std::fprintf(f, "  \"cold_queries\": %zu,\n", cold_lines.size());
  std::fprintf(f, "  \"warm_queries\": %zu,\n", warm_lines.size());
  std::fprintf(f, "  \"cold_single_qps\": %.1f,\n", cold_single.qps);
  std::fprintf(f, "  \"cold_batch_qps\": %.1f,\n", cold_batch.qps);
  std::fprintf(f, "  \"warm_single_qps\": %.1f,\n", warm_single.qps);
  std::fprintf(f, "  \"warm_batch_qps\": %.1f,\n", warm_batch.qps);
  std::fprintf(f, "  \"batch_speedup_cold\": %.3f,\n",
               cold_batch.qps > 0 && cold_single.qps > 0
                   ? cold_batch.qps / cold_single.qps
                   : 0.0);
  std::fprintf(f, "  \"batch_speedup_warm\": %.3f,\n",
               warm_batch.qps > 0 && warm_single.qps > 0
                   ? warm_batch.qps / warm_single.qps
                   : 0.0);
  std::fprintf(f, "  \"warm_mapping_searches\": %lld,\n",
               warm_single.mapping_searches + warm_batch.mapping_searches);
  std::fprintf(f, "  \"zero_searches_on_warm\": %s,\n",
               zero_searches_on_warm ? "true" : "false");
  std::fprintf(f, "  \"batch_identical_to_single\": %s,\n",
               batch_identical_to_single ? "true" : "false");
  std::fprintf(f, "  \"warm_identical_to_cold\": %s,\n",
               warm_identical_to_cold ? "true" : "false");
  std::fprintf(f,
               "  \"note\": \"batch submission amortizes per-submission "
               "store refresh (visible cold) and fans work units across "
               "the pool; on a 1-core host the fan-out term is ~1.0 and "
               "warm batch==single within noise\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_serve.json\n");
}

/// Warm single-query latency through the full line protocol.
void BM_ServeWarmQuery(benchmark::State& state) {
  const bench::Budget budget = bench::Budget::from_env();
  serve::ServeOptions opts = serve_options(budget, "");
  serve::EvalService service(opts);
  const std::vector<std::string> lines = make_session(1);
  // Prime the cache so iterations measure the serving path, not search.
  service.handle_lines(lines);
  std::size_t i = 0;
  for (auto _ : state) {
    const std::string response = service.handle_line(lines[i]);
    benchmark::DoNotOptimize(response.data());
    i = (i + 1) % lines.size();
  }
}
BENCHMARK(BM_ServeWarmQuery)->Unit(benchmark::kMicrosecond);

/// Warm batch submission (whole session per iteration).
void BM_ServeWarmBatch(benchmark::State& state) {
  const bench::Budget budget = bench::Budget::from_env();
  serve::ServeOptions opts = serve_options(budget, "");
  serve::EvalService service(opts);
  const std::vector<std::string> lines = make_session(1);
  service.handle_lines(lines);
  for (auto _ : state) {
    const auto responses = service.handle_lines(lines);
    benchmark::DoNotOptimize(responses.data());
  }
}
BENCHMARK(BM_ServeWarmBatch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_serving(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
