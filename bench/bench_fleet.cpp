// Sharded evaluator fleet end to end: a consistent-hash Router fronting
// 1/2/4 in-process naas_serve-equivalent workers (EvalService + TCP
// server), measured on the same query stream as bench_net. Emits
// BENCH_fleet.json for CI trend tracking.
//
// Correctness is asserted, not assumed, on three axes:
//   - every fleet response is byte-compared against a fresh single
//     EvalService::handle_lines run with identical options
//     (`responses_identical_to_single_service`);
//   - a mid-session worker kill must fail over with the client-visible
//     bytes unchanged, and the first post-kill pass's wall time is
//     reported as the failover recovery cost (`failover_latency_ms`);
//   - a "restarted" worker that pulls peer segments before serving must
//     replay the whole session with zero mapping searches
//     (`rejoin_zero_searches`).
//
// On a 1-core container adding workers buys pipelining of the router's
// send/read passes against worker evaluation, not parallel search; the
// scaling column is reported for trend, not judged.

#include "bench_common.hpp"

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "fleet/replicator.hpp"
#include "fleet/router.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace naas;

/// Same query mix as bench_net: search_mapping over every layer of the
/// benchmark nets on one preset arch, so the fleet numbers compare
/// directly against the single-server transport numbers.
std::vector<std::string> make_session() {
  std::vector<std::string> lines;
  int id = 0;
  for (const char* net : {"squeezenet", "mobilenetv2"}) {
    const int layers = nn::make_network(net).num_layers();
    for (int i = 0; i < layers; ++i) {
      serve::Json req = serve::Json::object();
      req.set("id", serve::Json::integer(++id));
      req.set("method", serve::Json::string("search_mapping"));
      serve::Json arch = serve::Json::object();
      arch.set("preset", serve::Json::string("nvdla256"));
      req.set("arch", std::move(arch));
      serve::Json layer = serve::Json::object();
      layer.set("network", serve::Json::string(net));
      layer.set("index", serve::Json::integer(i));
      req.set("layer", std::move(layer));
      lines.push_back(req.dump());
    }
  }
  return lines;
}

serve::ServeOptions serve_options(const bench::Budget& budget) {
  serve::ServeOptions opts;
  opts.mapping.population = budget.map_population;
  opts.mapping.iterations = budget.map_iterations;
  opts.mapping.seed = budget.seed;
  return opts;
}

/// One in-process worker: EvalService + TCP front end + net thread —
/// exactly what `naas_serve --listen` runs, minus the process boundary
/// (the SIGKILL flavor is scripts/fleet_soak.sh's job).
struct FleetWorker {
  serve::EvalService service;
  serve::Server server;
  std::thread net_thread;
  bool ok = false;

  explicit FleetWorker(const serve::ServeOptions& opts)
      : service(opts), server(service, ephemeral()) {
    std::string err;
    ok = server.start(&err);
    if (!ok) {
      std::fprintf(stderr, "bench_fleet: worker start failed: %s\n",
                   err.c_str());
      return;
    }
    net_thread = std::thread([this] { server.run(); });
  }

  ~FleetWorker() { stop(); }

  void stop() {
    if (net_thread.joinable()) {
      server.request_stop();
      net_thread.join();
    }
  }

  int port() const { return server.port(); }

  static serve::ServerOptions ephemeral() {
    serve::ServerOptions o;
    o.port = 0;
    return o;
  }
};

/// N workers behind one Router.
struct Fleet {
  std::vector<std::unique_ptr<FleetWorker>> workers;
  std::unique_ptr<fleet::Router> router;
  bool ok = true;

  Fleet(int n, const serve::ServeOptions& opts) {
    fleet::RouterOptions ropts;
    for (int i = 0; i < n; ++i) {
      workers.push_back(std::make_unique<FleetWorker>(opts));
      ok = ok && workers.back()->ok;
      ropts.workers.push_back({"127.0.0.1", workers.back()->port()});
    }
    ropts.forward_timeout_ms = 120000;  // evaluation, not I/O, dominates
    ropts.reconnect_backoff_ms = 10;
    ropts.reconnect_backoff_cap_ms = 100;
    if (ok) router = std::make_unique<fleet::Router>(std::move(ropts));
  }
};

struct Run {
  double wall_seconds = 0;
  double qps = 0;
  bool identical = false;
};

Run run_session(fleet::Router& router, const std::vector<std::string>& lines,
                const std::vector<std::string>& expected) {
  core::Timer timer;
  const std::vector<std::string> got = router.handle_lines(lines);
  Run run;
  run.wall_seconds = timer.seconds();
  run.qps = run.wall_seconds > 0 ? lines.size() / run.wall_seconds : 0;
  run.identical = got == expected;
  return run;
}

void reproduce_fleet(const bench::Budget& budget) {
  bench::print_header(
      "Sharded evaluator fleet: consistent-hash router over 1/2/4 workers "
      "vs the single-service reference");

  const serve::ServeOptions opts = serve_options(budget);
  const std::vector<std::string> lines = make_session();

  // Single-service reference: responses are pure functions of
  // (request, options), so every fleet response must match these bytes.
  std::vector<std::string> expected;
  {
    serve::EvalService reference(opts);
    expected = reference.handle_lines(lines);
  }

  bool identical = true;
  core::Table t({"Workers", "Phase", "Queries", "Wall (s)", "Queries/s"});
  double warm_qps[3] = {0, 0, 0};
  const int sizes[3] = {1, 2, 4};
  for (int s = 0; s < 3; ++s) {
    Fleet fleet(sizes[s], opts);
    if (!fleet.ok) return;
    const Run cold = run_session(*fleet.router, lines, expected);
    const Run warm = run_session(*fleet.router, lines, expected);
    identical = identical && cold.identical && warm.identical;
    warm_qps[s] = warm.qps;
    for (const auto* phase : {&cold, &warm})
      t.add_row({core::Table::fmt_int(sizes[s]),
                 phase == &cold ? "cold" : "warm",
                 core::Table::fmt_int(static_cast<long long>(lines.size())),
                 core::Table::fmt(phase->wall_seconds, 3),
                 core::Table::fmt_int(static_cast<long long>(phase->qps))});
  }
  std::printf("%s\n", t.to_string().c_str());

  // Failover: warm 2-worker fleet, kill worker 0, replay. The bytes must
  // not change; the pass's wall time is the client-visible recovery cost
  // (dead-connection detection + group failover + re-evaluation of the
  // dead worker's shard on the survivor's cold cache).
  double failover_ms = 0;
  bool failover_identical = false;
  long long failovers = 0;
  {
    Fleet fleet(2, opts);
    if (!fleet.ok) return;
    run_session(*fleet.router, lines, expected);  // warm both shards
    fleet.workers[0]->stop();
    const Run after = run_session(*fleet.router, lines, expected);
    failover_ms = after.wall_seconds * 1000.0;
    failover_identical = after.identical;
    failovers = fleet.router->stats().failovers;
  }

  // Rejoin: a "restarted" worker with an empty cache pulls every peer's
  // segment before serving, then must replay the whole session warm.
  bool rejoin_zero_searches = false;
  bool rejoin_identical = false;
  std::size_t rejoin_adopted = 0;
  {
    Fleet fleet(4, opts);
    if (!fleet.ok) return;
    run_session(*fleet.router, lines, expected);  // spread entries over shards
    serve::EvalService fresh(opts);
    fleet::ReplicatorOptions ropts;
    for (const auto& w : fleet.workers)
      ropts.peers.push_back({"127.0.0.1", w->port()});
    fleet::Replicator replicator(ropts);
    rejoin_adopted = replicator.pull_once(fresh);
    rejoin_identical = fresh.handle_lines(lines) == expected;
    rejoin_zero_searches = fresh.evaluator().mapping_searches() == 0;
  }

  std::printf(
      "responses identical to single service: %s\n"
      "failover pass: %.0f ms, %lld lines failed over, bytes %s\n"
      "rejoin: %zu entries adopted from 4 peers, replay %s with %s\n"
      "warm scaling 1->4 workers: %.2fx qps\n",
      identical ? "yes" : "NO (BUG)", failover_ms, failovers,
      failover_identical ? "unchanged" : "CHANGED (BUG)", rejoin_adopted,
      rejoin_identical ? "byte-identical" : "DIVERGED (BUG)",
      rejoin_zero_searches ? "zero searches" : "SEARCHES RUN (BUG)",
      warm_qps[0] > 0 ? warm_qps[2] / warm_qps[0] : 0.0);

  FILE* f = std::fopen("BENCH_fleet.json", "w");
  if (!f) {
    std::printf("could not open BENCH_fleet.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"fleet_throughput\",\n");
  std::fprintf(f, "  \"envelope\": \"nvdla256\",\n");
  std::fprintf(f, "  \"networks\": [\"squeezenet\", \"mobilenetv2\"],\n");
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n",
               core::ThreadPool::default_num_threads());
  std::fprintf(f, "  \"session_queries\": %zu,\n", lines.size());
  std::fprintf(f, "  \"warm_qps_1_worker\": %.1f,\n", warm_qps[0]);
  std::fprintf(f, "  \"warm_qps_2_workers\": %.1f,\n", warm_qps[1]);
  std::fprintf(f, "  \"warm_qps_4_workers\": %.1f,\n", warm_qps[2]);
  std::fprintf(f, "  \"warm_scaling_1_to_4\": %.3f,\n",
               warm_qps[0] > 0 ? warm_qps[2] / warm_qps[0] : 0.0);
  std::fprintf(f, "  \"failover_latency_ms\": %.1f,\n", failover_ms);
  std::fprintf(f, "  \"failover_lines\": %lld,\n", failovers);
  std::fprintf(f, "  \"failover_bytes_unchanged\": %s,\n",
               failover_identical ? "true" : "false");
  std::fprintf(f, "  \"rejoin_entries_adopted\": %zu,\n", rejoin_adopted);
  std::fprintf(f, "  \"rejoin_byte_identical\": %s,\n",
               rejoin_identical ? "true" : "false");
  std::fprintf(f, "  \"rejoin_zero_searches\": %s,\n",
               rejoin_zero_searches ? "true" : "false");
  std::fprintf(f, "  \"responses_identical_to_single_service\": %s,\n",
               identical && failover_identical && rejoin_identical
                   ? "true"
                   : "false");
  std::fprintf(f,
               "  \"note\": \"every fleet response byte-compared against "
               "EvalService::handle_lines with identical options; failover "
               "latency is the full post-kill session pass including "
               "dead-connection detection and shard re-evaluation; on a "
               "1-core host multi-worker gains come from pipelining router "
               "I/O against evaluation, not parallel search\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_fleet.json\n");
}

/// Warm single-query trip through the full routing pipeline: key, ring
/// lookup, pooled-connection forward, worker cache hit, reassembly.
void BM_FleetWarmRoutedQuery(benchmark::State& state) {
  const bench::Budget budget = bench::Budget::from_env();
  Fleet fleet(2, serve_options(budget));
  if (!fleet.ok) {
    state.SkipWithError("fleet start failed");
    return;
  }
  const std::vector<std::string> lines = make_session();
  fleet.router->handle_lines(lines);  // prime every shard
  const std::vector<std::string> one{lines[0]};
  for (auto _ : state) {
    const std::vector<std::string> got = fleet.router->handle_lines(one);
    if (got.size() != 1) {
      state.SkipWithError("routed query failed");
      return;
    }
    benchmark::DoNotOptimize(got[0].data());
  }
}
BENCHMARK(BM_FleetWarmRoutedQuery)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fleet(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
