// Figure 8: EDP reduction of full NAAS versus searching architectural
// sizing only (the prior-work design space of [11], [12]). Paper numbers:
//   EdgeTPU resources:   VGG 3.52x / MobileNetV2 1.42x advantage for NAAS
//   NVDLA-1024 resources: VGG 2.61x / MobileNetV2 1.62x
// Both arms here share identical budgets; the sizing-only arm fixes a 2D
// C x K array (square-ish) and canonical weight-stationary loop orders with
// tiling-only mapping search.

#include "bench_common.hpp"

namespace {

using namespace naas;

void reproduce_fig8(const bench::Budget& budget) {
  bench::print_header(
      "Fig. 8: full NAAS vs architectural-sizing-only search");

  const cost::CostModel model;
  const nn::Network nets[] = {nn::make_vgg16(), nn::make_mobilenet_v2()};
  const arch::ResourceConstraint envelopes[] = {
      arch::edge_tpu_resources(), arch::nvdla_1024_resources()};

  core::Table t({"Envelope", "Network", "Sizing-only EDP red.",
                 "NAAS EDP red.", "NAAS advantage"});
  for (const auto& rc : envelopes) {
    const arch::ArchConfig baseline = arch::baseline_for(rc);
    for (const auto& net : nets) {
      const auto base = bench::baseline_cost_stock(model, baseline, net);

      // Sizing-only arm: fixed connectivity, canonical orders.
      search::NaasOptions sizing = budget.naas_options(rc);
      sizing.search_connectivity = false;
      sizing.mapping.encoding.search_order = false;
      sizing.mapping.seed_canonical = false;
      const auto rs = search::run_naas(model, sizing, {net});

      // Full NAAS arm.
      const auto rf =
          search::run_naas(model, budget.naas_options(rc), {net});

      if (!std::isfinite(rs.best_geomean_edp) ||
          !std::isfinite(rf.best_geomean_edp)) {
        t.add_row({rc.name, net.name(), "-", "-", "search failed"});
        continue;
      }
      const double red_sizing = base.edp / rs.best_networks[0].edp;
      const double red_naas = base.edp / rf.best_networks[0].edp;
      t.add_row({rc.name, net.name(), core::Table::fmt(red_sizing, 2),
                 core::Table::fmt(red_naas, 2),
                 core::Table::fmt(red_naas / red_sizing, 2)});
    }
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expected shape (paper): NAAS's extra connectivity + loop-order\n"
      "freedom gives 1.4-3.5x further EDP reduction over sizing-only.\n");
}

void BM_SizingOnlyDecode(benchmark::State& state) {
  search::HwEncodingSpec spec;
  spec.resources = arch::nvdla_1024_resources();
  spec.search_connectivity = false;
  std::vector<double> genome(static_cast<std::size_t>(spec.genome_size()),
                             0.6);
  for (auto _ : state) {
    auto cfg = spec.decode(genome);
    benchmark::DoNotOptimize(cfg.num_pes());
  }
}
BENCHMARK(BM_SizingOnlyDecode);

void BM_FullHwDecode(benchmark::State& state) {
  search::HwEncodingSpec spec;
  spec.resources = arch::nvdla_1024_resources();
  std::vector<double> genome(static_cast<std::size_t>(spec.genome_size()),
                             0.6);
  for (auto _ : state) {
    auto cfg = spec.decode(genome);
    benchmark::DoNotOptimize(cfg.num_pes());
  }
}
BENCHMARK(BM_FullHwDecode);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig8(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
