// Table IV: search cost on ImageNet for N deployment scenarios. NASAIC's
// meta-controller trains 500 networks from scratch per scenario; NHAS
// retrains per deployment; NAAS amortizes one OFA supernet and its own
// search is analytical. We measure one real NAAS scenario on this machine
// and project with the paper's cost constants ($75/GPU-day, 7.5 lbs
// CO2/GPU-day).

#include "bench_common.hpp"

#include <cstdio>

#include "mapping/canonical.hpp"
#include "search/cma_es.hpp"
#include "search/cost_accounting.hpp"

namespace {

using namespace naas;

void reproduce_table4(const bench::Budget& budget) {
  bench::print_header("Table IV: search cost for N deployment scenarios");

  // Measure one genuine co-search scenario (accelerator + mapping for
  // MobileNetV2 under Eyeriss resources), serial and with the parallel
  // evaluation engine: the parallel run is what the table reports (it is
  // bit-identical in outcome), the serial run shows the threading win.
  // The measured run doubles as the cold half of the warm-start comparison:
  // it flushes its mapping-result store, and a warm re-run below loads it.
  const cost::CostModel model;
  const char* store_path = "BENCH_table4_cache.bin";
  std::remove(store_path);
  search::NaasOptions cold_opts =
      budget.naas_options(arch::eyeriss_resources());
  cold_opts.cache_path = store_path;
  const auto res = search::run_naas(model, cold_opts, {nn::make_mobilenet_v2()});
  search::MeasuredSearchCost measured;
  measured.cost_model_evaluations = res.cost_evaluations;
  measured.mapping_searches = res.mapping_searches;
  measured.wall_seconds = res.wall_seconds;
  std::printf("measured scenario: %s\n", measured.to_string().c_str());
  // The serial re-run only informs multi-core hosts; on one core the ratio
  // is ~1.0 by construction and a second full co-search just doubles the
  // bench's wall time (bench_parallel_scaling covers the full sweep).
  if (core::ThreadPool::default_num_threads() > 1) {
    search::NaasOptions serial_opts =
        budget.naas_options(arch::eyeriss_resources());
    serial_opts.num_threads = 1;
    const auto serial_res =
        search::run_naas(model, serial_opts, {nn::make_mobilenet_v2()});
    std::printf(
        "serial %.3fs (%.0f evals/s) vs parallel %.3fs (%.0f evals/s): "
        "%.2fx speedup, outcome %s\n\n",
        serial_res.wall_seconds,
        serial_res.wall_seconds > 0
            ? serial_res.cost_evaluations / serial_res.wall_seconds
            : 0.0,
        res.wall_seconds,
        res.wall_seconds > 0 ? res.cost_evaluations / res.wall_seconds : 0.0,
        res.wall_seconds > 0 ? serial_res.wall_seconds / res.wall_seconds
                             : 0.0,
        serial_res.best_geomean_edp == res.best_geomean_edp
            ? "bit-identical"
            : "DIVERGED (determinism bug)");
  } else {
    std::printf(
        "single-core host: skipping the serial re-run "
        "(see bench_parallel_scaling for the thread sweep)\n\n");
  }

  // Warm re-run from the persistent store: the amortization lever for
  // repeated deployment scenarios — a second scenario over the same layer
  // shapes pays zero mapping-search generations.
  {
    const auto warm = search::run_naas(model, cold_opts,
                                       {nn::make_mobilenet_v2()});
    std::printf(
        "warm re-run from %s: %.3fs vs cold %.3fs (%.1fx), "
        "%lld mapping searches (cold %lld), outcome %s\n\n",
        store_path, warm.wall_seconds, res.wall_seconds,
        warm.wall_seconds > 0 ? res.wall_seconds / warm.wall_seconds : 0.0,
        warm.mapping_searches, res.mapping_searches,
        warm.best_geomean_edp == res.best_geomean_edp &&
                warm.mapping_searches == 0
            ? "bit-identical, zero searches"
            : "DIVERGED (warm-start bug)");
    std::remove(store_path);
  }

  using SC = search::SearchCostModel;
  const double ours_1 = SC::naas_gpu_days(1, measured.wall_seconds);

  core::Table t({"Approach", "Co-search (Gd)", "NN training (Gd)",
                 "Total (Gd), N=1", "AWS cost", "CO2 (lbs)"});
  t.add_row({"NASAIC", "6000N", "16N",
             core::Table::fmt(SC::nasaic_gpu_days(1), 0),
             "$" + core::Table::fmt_int(static_cast<long long>(
                       SC::aws_cost(SC::nasaic_gpu_days(1)))),
             core::Table::fmt_int(static_cast<long long>(
                 SC::co2_lbs(SC::nasaic_gpu_days(1))))});
  t.add_row({"NHAS", "12+4N", "16N",
             core::Table::fmt(SC::nhas_gpu_days(1), 0),
             "$" + core::Table::fmt_int(static_cast<long long>(
                       SC::aws_cost(SC::nhas_gpu_days(1)))),
             core::Table::fmt_int(static_cast<long long>(
                 SC::co2_lbs(SC::nhas_gpu_days(1))))});
  t.add_row({"Ours (NAAS)",
             core::Table::fmt(measured.wall_seconds / 86400.0, 5) + "N",
             core::Table::fmt(SC::kOfaSupernetGpuDays, 0) + " (one-time)",
             core::Table::fmt(ours_1, 1),
             "$" + core::Table::fmt_int(
                       static_cast<long long>(SC::aws_cost(ours_1))),
             core::Table::fmt_int(
                 static_cast<long long>(SC::co2_lbs(ours_1)))});
  std::printf("%s\n", t.to_string().c_str());

  std::printf("cost ratio NASAIC / NAAS at N=1: %.0fx  (paper: >120x)\n",
              SC::nasaic_gpu_days(1) / ours_1);
  std::printf("amortized: by N=10 NAAS adds only %.3f Gd of search on top "
              "of the one-time supernet.\n",
              10.0 * measured.wall_seconds / 86400.0);
}

void BM_CostModelEvaluation(benchmark::State& state) {
  const cost::CostModel model;
  const auto arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("c", 128, 256, 3, 1, 28);
  const auto m = mapping::canonical_mapping(arch, layer);
  for (auto _ : state) {
    const auto rep = model.evaluate(arch, layer, m);
    benchmark::DoNotOptimize(rep.edp);
  }
}
BENCHMARK(BM_CostModelEvaluation);

void BM_CmaEsGeneration(benchmark::State& state) {
  search::CmaEsOptions opts;
  opts.dim = 30;
  opts.population = 16;
  search::CmaEs cma(opts);
  for (auto _ : state) {
    const auto pop = cma.ask();
    std::vector<double> fit(pop.size());
    for (std::size_t i = 0; i < pop.size(); ++i) fit[i] = pop[i][0];
    cma.tell(pop, fit);
    benchmark::DoNotOptimize(cma.sigma());
  }
}
BENCHMARK(BM_CmaEsGeneration)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_table4(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
