// Multi-client TCP serving throughput: the socket front end (serve::Server)
// measured end to end against in-process LineClients — framing, admission,
// batch dispatch, reorder-buffer flush, and the poll loop — at 1, 2, and 4
// concurrent pipelined clients. Emits BENCH_net.json for CI trend tracking.
//
// Correctness is asserted, not assumed: every TCP response is compared
// byte-for-byte against a fresh EvalService::handle_lines run with the
// same options (the stdin driver's exact code path), so the JSON records
// `responses_identical_to_stdin_mode` — the transport must add zero
// semantic surface. On a 1-core container adding clients buys pipelining
// of net-thread framing against eval-thread search, not parallel
// evaluation; the scaling column is reported for trend, not judged.

#include "bench_common.hpp"

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/thread_pool.hpp"
#include "core/timer.hpp"
#include "net/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"

namespace {

using namespace naas;

/// search_mapping request lines over every layer of the benchmark nets on
/// one preset arch (same mix as bench_serve_throughput, so the two benches
/// measure the same query stream over different transports).
std::vector<std::string> make_session(int repeats) {
  std::vector<std::string> lines;
  int id = 0;
  for (int r = 0; r < repeats; ++r) {
    for (const char* net : {"squeezenet", "mobilenetv2"}) {
      const int layers = nn::make_network(net).num_layers();
      for (int i = 0; i < layers; ++i) {
        serve::Json req = serve::Json::object();
        req.set("id", serve::Json::integer(++id));
        req.set("method", serve::Json::string("search_mapping"));
        serve::Json arch = serve::Json::object();
        arch.set("preset", serve::Json::string("nvdla256"));
        req.set("arch", std::move(arch));
        serve::Json layer = serve::Json::object();
        layer.set("network", serve::Json::string(net));
        layer.set("index", serve::Json::integer(i));
        req.set("layer", std::move(layer));
        lines.push_back(req.dump());
      }
    }
  }
  return lines;
}

serve::ServeOptions serve_options(const bench::Budget& budget) {
  serve::ServeOptions opts;
  opts.mapping.population = budget.map_population;
  opts.mapping.iterations = budget.map_iterations;
  opts.mapping.seed = budget.seed;
  return opts;
}

/// In-process server under bench: service + transport + net thread.
struct BenchServer {
  serve::EvalService service;
  serve::Server server;
  std::thread net_thread;
  bool ok = false;

  explicit BenchServer(const serve::ServeOptions& opts)
      : service(opts), server(service, make_server_options()) {
    std::string err;
    ok = server.start(&err);
    if (!ok) {
      std::fprintf(stderr, "bench_net: server start failed: %s\n",
                   err.c_str());
      return;
    }
    net_thread = std::thread([this] { server.run(); });
  }

  ~BenchServer() {
    if (net_thread.joinable()) {
      server.request_stop();
      net_thread.join();
    }
  }

  static serve::ServerOptions make_server_options() {
    serve::ServerOptions o;
    o.port = 0;  // ephemeral
    return o;
  }
};

/// One client session: connect, pipeline every line in one write, then
/// read all responses back. Returns false on any transport failure.
bool run_client(int port, const std::string& pipelined, std::size_t n_lines,
                std::vector<std::string>* responses) {
  net::LineClient client;
  std::string err;
  if (!client.connect("127.0.0.1", port, 5000, &err)) return false;
  if (!client.send_raw(pipelined)) return false;
  client.shutdown_write();
  responses->reserve(n_lines);
  for (std::size_t i = 0; i < n_lines; ++i) {
    std::string line;
    if (!client.read_line(&line, 120000)) return false;
    responses->push_back(std::move(line));
  }
  return true;
}

struct Run {
  double wall_seconds = 0;
  double qps = 0;  ///< aggregate across all clients
  bool transport_ok = false;
  bool identical = false;  ///< every response byte-equal to stdin mode
};

/// `clients` concurrent connections, each sending the full session
/// pipelined. `expected` is the stdin-mode reference for one session.
Run run_clients(int port, int clients, const std::vector<std::string>& lines,
                const std::vector<std::string>& expected) {
  std::string pipelined;
  for (const std::string& line : lines) pipelined += line + "\n";

  std::vector<std::thread> threads;
  std::vector<std::vector<std::string>> responses(clients);
  std::atomic<int> failures{0};
  core::Timer timer;
  for (int c = 0; c < clients; ++c)
    threads.emplace_back([&, c] {
      if (!run_client(port, pipelined, lines.size(), &responses[c]))
        failures.fetch_add(1);
    });
  for (std::thread& t : threads) t.join();

  Run run;
  run.wall_seconds = timer.seconds();
  run.qps = run.wall_seconds > 0
                ? clients * lines.size() / run.wall_seconds
                : 0;
  run.transport_ok = failures.load() == 0;
  run.identical = run.transport_ok;
  for (const std::vector<std::string>& r : responses)
    run.identical = run.identical && r == expected;
  return run;
}

void reproduce_net(const bench::Budget& budget) {
  bench::print_header(
      "TCP serving throughput: multi-client pipelined sessions vs the "
      "stdin-mode reference");

  const serve::ServeOptions opts = serve_options(budget);
  const std::vector<std::string> lines = make_session(1);

  // Stdin-mode reference: the exact same lines through handle_lines on a
  // fresh service with identical options. Responses are pure functions of
  // (request, options), so every TCP response must match these bytes.
  std::vector<std::string> expected;
  {
    serve::EvalService reference(opts);
    expected = reference.handle_lines(lines);
  }

  BenchServer bench_server(opts);
  if (!bench_server.ok) return;
  const int port = bench_server.server.port();

  // Cold: the single client's session pays every mapping search.
  const Run cold = run_clients(port, 1, lines, expected);
  // Warm: pure transport + cache-hit throughput at increasing fan-in.
  const Run warm1 = run_clients(port, 1, lines, expected);
  const Run warm2 = run_clients(port, 2, lines, expected);
  const Run warm4 = run_clients(port, 4, lines, expected);

  const bool identical = cold.identical && warm1.identical &&
                         warm2.identical && warm4.identical;
  const bool transport_ok = cold.transport_ok && warm1.transport_ok &&
                            warm2.transport_ok && warm4.transport_ok;

  core::Table t({"Phase", "Clients", "Queries", "Wall (s)", "Queries/s"});
  const auto add = [&](const char* phase, int clients, const Run& run) {
    t.add_row({phase, core::Table::fmt_int(clients),
               core::Table::fmt_int(
                   static_cast<long long>(clients * lines.size())),
               core::Table::fmt(run.wall_seconds, 3),
               core::Table::fmt_int(static_cast<long long>(run.qps))});
  };
  add("cold", 1, cold);
  add("warm", 1, warm1);
  add("warm", 2, warm2);
  add("warm", 4, warm4);
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "responses identical to stdin mode: %s   transport clean: %s\n"
      "warm scaling 1->4 clients: %.2fx aggregate qps\n",
      identical ? "yes" : "NO (BUG)", transport_ok ? "yes" : "NO (BUG)",
      warm1.qps > 0 ? warm4.qps / warm1.qps : 0.0);

  FILE* f = std::fopen("BENCH_net.json", "w");
  if (!f) {
    std::printf("could not open BENCH_net.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"net_throughput\",\n");
  std::fprintf(f, "  \"envelope\": \"nvdla256\",\n");
  std::fprintf(f, "  \"networks\": [\"squeezenet\", \"mobilenetv2\"],\n");
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n",
               core::ThreadPool::default_num_threads());
  std::fprintf(f, "  \"session_queries\": %zu,\n", lines.size());
  std::fprintf(f, "  \"cold_qps\": %.1f,\n", cold.qps);
  std::fprintf(f, "  \"warm_qps_1_client\": %.1f,\n", warm1.qps);
  std::fprintf(f, "  \"warm_qps_2_clients\": %.1f,\n", warm2.qps);
  std::fprintf(f, "  \"warm_qps_4_clients\": %.1f,\n", warm4.qps);
  std::fprintf(f, "  \"warm_scaling_1_to_4\": %.3f,\n",
               warm1.qps > 0 ? warm4.qps / warm1.qps : 0.0);
  std::fprintf(f, "  \"transport_clean\": %s,\n",
               transport_ok ? "true" : "false");
  std::fprintf(f, "  \"responses_identical_to_stdin_mode\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f,
               "  \"note\": \"every TCP response byte-compared against "
               "EvalService::handle_lines with identical options; on a "
               "1-core host multi-client gains come from pipelining "
               "net-thread framing against eval-thread work, not parallel "
               "evaluation\"\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_net.json\n");
}

/// Warm single-query round trip over TCP: socket write, poll wake, frame,
/// admit, dispatch (cache hit), reorder flush, socket read.
void BM_NetWarmRoundTrip(benchmark::State& state) {
  const bench::Budget budget = bench::Budget::from_env();
  BenchServer bench_server(serve_options(budget));
  if (!bench_server.ok) {
    state.SkipWithError("server start failed");
    return;
  }
  net::LineClient client;
  std::string err;
  if (!client.connect("127.0.0.1", bench_server.server.port(), 5000, &err)) {
    state.SkipWithError("connect failed");
    return;
  }
  const std::vector<std::string> lines = make_session(1);
  // Prime the cache so iterations measure the transport, not search.
  std::string response;
  client.send_line(lines[0]);
  client.read_line(&response, 120000);
  for (auto _ : state) {
    client.send_line(lines[0]);
    if (!client.read_line(&response, 120000)) {
      state.SkipWithError("round trip failed");
      return;
    }
    benchmark::DoNotOptimize(response.data());
  }
}
BENCHMARK(BM_NetWarmRoundTrip)->Unit(benchmark::kMicrosecond);

/// Warm pipelined burst: 32 requests in one write, 32 responses back —
/// the per-query floor when framing and dispatch are amortized.
void BM_NetWarmPipelinedBurst(benchmark::State& state) {
  const bench::Budget budget = bench::Budget::from_env();
  BenchServer bench_server(serve_options(budget));
  if (!bench_server.ok) {
    state.SkipWithError("server start failed");
    return;
  }
  net::LineClient client;
  std::string err;
  if (!client.connect("127.0.0.1", bench_server.server.port(), 5000, &err)) {
    state.SkipWithError("connect failed");
    return;
  }
  const std::vector<std::string> lines = make_session(1);
  constexpr int kBurst = 32;
  std::string burst;
  for (int i = 0; i < kBurst; ++i)
    burst += lines[static_cast<std::size_t>(i) % lines.size()] + "\n";
  std::string response;
  client.send_raw(burst);  // prime
  for (int i = 0; i < kBurst; ++i) client.read_line(&response, 120000);
  for (auto _ : state) {
    client.send_raw(burst);
    for (int i = 0; i < kBurst; ++i) {
      if (!client.read_line(&response, 120000)) {
        state.SkipWithError("burst read failed");
        return;
      }
    }
    benchmark::DoNotOptimize(response.data());
  }
  state.SetItemsProcessed(state.iterations() * kBurst);
}
BENCHMARK(BM_NetWarmPipelinedBurst)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_net(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
