// Figure 6: speedup and energy saving when NAAS searches one accelerator
// *per network* (instead of per benchmark set). Per-network specialization
// should meet or beat the Fig. 5 shared designs.
//
// The paper sweeps all five envelopes x six networks; the default budget
// here uses a reduced outer loop so the 30 searches stay bench-sized.

#include "bench_common.hpp"

namespace {

using namespace naas;

void reproduce_fig6(bench::Budget budget) {
  bench::print_header(
      "Fig. 6: NAAS searched per single network, all envelopes");

  // 30 searches: trim the outer budget unless NAAS_BENCH_FULL=1.
  if (!core::env_flag("NAAS_BENCH_FULL", false)) {
    budget.hw_population = 8;
    budget.hw_iterations = 6;
  }

  const cost::CostModel model;
  const auto nets = [] {
    auto l = nn::large_benchmarks();
    auto s = nn::small_benchmarks();
    l.insert(l.end(), s.begin(), s.end());
    return l;
  }();

  for (const auto& rc : arch::all_resource_envelopes()) {
    const arch::ArchConfig baseline = arch::baseline_for(rc);
    core::Table t({"Network", "Speedup", "Energy saving", "EDP reduction",
                   "Searched design"});
    for (const auto& net : nets) {
      const auto res =
          search::run_naas(model, budget.naas_options(rc), {net});
      if (!std::isfinite(res.best_geomean_edp)) {
        t.add_row({net.name(), "-", "-", "-", "search failed"});
        continue;
      }
      const auto base = bench::baseline_cost_stock(model, baseline, net);
      const auto& searched = res.best_networks.front();
      t.add_row({net.name(),
                 core::Table::fmt(base.latency_cycles /
                                      searched.latency_cycles, 2),
                 core::Table::fmt(base.energy_nj / searched.energy_nj, 2),
                 core::Table::fmt(base.edp / searched.edp, 2),
                 res.best_arch.to_string()});
    }
    std::printf("--- %s envelope (baseline %s) ---\n\n%s\n",
                rc.name.c_str(), baseline.name.c_str(),
                t.to_string().c_str());
  }
}

void BM_SingleNetworkSearch(benchmark::State& state) {
  const cost::CostModel model;
  const std::vector<nn::Network> nets{nn::make_squeezenet()};
  for (auto _ : state) {
    search::NaasOptions opts;
    opts.resources = arch::nvdla_256_resources();
    opts.population = 6;
    opts.iterations = 3;
    opts.mapping.population = 6;
    opts.mapping.iterations = 3;
    const auto res = search::run_naas(model, opts, nets);
    benchmark::DoNotOptimize(res.best_geomean_edp);
  }
}
BENCHMARK(BM_SingleNetworkSearch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig6(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
