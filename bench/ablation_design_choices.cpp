// Beyond-paper ablation: the three implementation choices this repro's
// DESIGN.md calls out, each toggled independently under identical budgets
// (MobileNetV2 @ Eyeriss resources):
//   1. grow-to-fit tile decoding (genes as growth priorities vs raw ratios)
//   2. warm-starting the outer search with the envelope's baseline design
//   3. seeding the mapping search with the canonical dataflow mappings
// The table reports the searched EDP reduction vs the stock baseline for
// the full configuration and with each choice disabled.

#include "bench_common.hpp"

namespace {

using namespace naas;

void reproduce_ablation(const bench::Budget& budget) {
  bench::print_header(
      "Ablation (beyond paper): grow-to-fit / warm start / canonical seeds");

  const cost::CostModel model;
  const nn::Network net = nn::make_mobilenet_v2();
  const auto rc = arch::eyeriss_resources();
  const auto base =
      bench::baseline_cost_stock(model, arch::baseline_for(rc), net);

  struct Variant {
    const char* name;
    bool grow;
    bool warm_start;
    bool canonical_seeds;
  };
  const Variant variants[] = {
      {"full (all enabled)", true, true, true},
      {"no grow-to-fit", false, true, true},
      {"no warm start", true, false, true},
      {"no canonical seeds", true, true, false},
      {"none (raw search)", false, false, false},
  };

  core::Table t({"Variant", "EDP reduction", "vs full"});
  double full_reduction = 0;
  for (const auto& v : variants) {
    search::NaasOptions opts = budget.naas_options(rc);
    opts.mapping.encoding.grow_tiles = v.grow;
    opts.seed_baseline = v.warm_start;
    opts.mapping.seed_canonical = v.canonical_seeds;
    const auto res = search::run_naas(model, opts, {net});
    const double reduction = std::isfinite(res.best_geomean_edp)
                                 ? base.edp / res.best_networks[0].edp
                                 : 0.0;
    if (full_reduction == 0) full_reduction = reduction;
    t.add_row({v.name, core::Table::fmt(reduction, 2),
               core::Table::fmt(reduction / full_reduction, 2)});
  }
  std::printf("%s\n", t.to_string().c_str());
  std::printf(
      "Expected: the three mechanisms are redundant safety nets — any\n"
      "single one disabled is largely compensated by the others (single\n"
      "toggles land within noise of full), but disabling all three\n"
      "collapses search quality by several-fold ('none' row).\n");
}

void BM_GrowToFitDecode(benchmark::State& state) {
  search::MapEncodingSpec spec;
  const auto arch = arch::eyeriss_arch();
  const nn::Workload layer = nn::make_conv("c", 128, 128, 3, 1, 28);
  std::vector<double> genome(static_cast<std::size_t>(spec.genome_size()),
                             0.4);
  for (auto _ : state) {
    auto m = spec.decode(genome, arch, layer);
    benchmark::DoNotOptimize(m.dram.tile[0]);
  }
}
BENCHMARK(BM_GrowToFitDecode);

void BM_RawDecode(benchmark::State& state) {
  search::MapEncodingSpec spec;
  spec.grow_tiles = false;
  const auto arch = arch::eyeriss_arch();
  const nn::Workload layer = nn::make_conv("c", 128, 128, 3, 1, 28);
  std::vector<double> genome(static_cast<std::size_t>(spec.genome_size()),
                             0.4);
  for (auto _ : state) {
    auto m = spec.decode(genome, arch, layer);
    benchmark::DoNotOptimize(m.dram.tile[0]);
  }
}
BENCHMARK(BM_RawDecode);

}  // namespace

int main(int argc, char** argv) {
  reproduce_ablation(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
