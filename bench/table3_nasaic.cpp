// Table III: NAAS (accelerator search only) versus NASAIC under the same
// design constraints, on NASAIC's CIFAR-scale workload. Paper numbers:
//   NASAIC: latency 3e5 cycles, energy 1e9 nJ, EDP 3e14
//   NAAS:   latency 8e4 cycles, energy 2e9 nJ, EDP 2e14
// Shape to reproduce: NAAS trades some energy for a large latency win and
// a net EDP advantage (~1.9x). The accuracy column carries over from
// NASAIC's published results (93.2% CIFAR-10 for the DLA-mapped net).

#include "bench_common.hpp"

#include "baselines/nasaic.hpp"

namespace {

using namespace naas;

void reproduce_table3(const bench::Budget& budget) {
  bench::print_header("Table III: NAAS (accelerator only) vs NASAIC");

  const cost::CostModel model;
  const nn::Network net = nn::make_cifar_net();

  // NASAIC: heterogeneous DLA+Shi allocation search.
  baselines::NasaicOptions nopts;
  nopts.total_pes = 1024;
  nopts.total_onchip_bytes = 1024LL * 1024;
  nopts.total_noc_bandwidth = 64;
  nopts.pe_step = 64;
  const auto nasaic = baselines::run_nasaic(model, net, nopts);

  // NAAS: one searched accelerator under the same total budget.
  arch::ResourceConstraint rc;
  rc.name = "NASAIC-budget";
  rc.max_pes = nopts.total_pes;
  rc.max_onchip_bytes = nopts.total_onchip_bytes;
  rc.max_noc_bandwidth = nopts.total_noc_bandwidth;
  rc.dram_bandwidth = nopts.dram_bandwidth;
  const auto naas = search::run_naas(model, budget.naas_options(rc), {net});

  core::Table t({"Approach", "Arch", "Cifar-10 acc.", "Latency (cycles)",
                 "Energy (nJ)", "EDP (cycles*nJ)"});
  t.add_row({"NASAIC", "DLA+Shi", "93.2 / 91.1",
             core::Table::fmt_sci(nasaic.latency_cycles, 1),
             core::Table::fmt_sci(nasaic.energy_nj, 1),
             core::Table::fmt_sci(nasaic.edp, 1)});
  if (std::isfinite(naas.best_geomean_edp)) {
    const auto& nc = naas.best_networks[0];
    t.add_row({"NAAS", "searched", "93.2",
               core::Table::fmt_sci(nc.latency_cycles, 1),
               core::Table::fmt_sci(nc.energy_nj, 1),
               core::Table::fmt_sci(nc.edp, 1)});
    std::printf("%s\n", t.to_string().c_str());
    std::printf("NASAIC allocation: %s\n\n", nasaic.to_string().c_str());
    std::printf("NAAS vs NASAIC: %.2fx latency, %.2fx energy, %.2fx EDP "
                "(paper: 3.75x latency, 0.5x energy, 1.88x EDP)\n",
                nasaic.latency_cycles / nc.latency_cycles,
                nasaic.energy_nj / nc.energy_nj, nasaic.edp / nc.edp);
  } else {
    std::printf("%s\nNAAS search failed\n", t.to_string().c_str());
  }
}

void BM_NasaicGrid(benchmark::State& state) {
  const cost::CostModel model;
  const nn::Network net = nn::make_cifar_net();
  for (auto _ : state) {
    baselines::NasaicOptions opts;
    opts.total_pes = 512;
    opts.pe_step = 128;
    const auto res = baselines::run_nasaic(model, net, opts);
    benchmark::DoNotOptimize(res.edp);
  }
}
BENCHMARK(BM_NasaicGrid)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_table3(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
