// Batched cost model throughput: per-candidate CostModel::evaluate (one
// LayerContext rebuilt per call — the pre-batching search inner loop)
// versus CostModel::evaluate_batch at generation-sized batches, on a mixed
// conv / depthwise / pointwise / FC layer set — and, per cost backend
// (scalar reference vs every SIMD backend this CPU can run), batched
// candidates/s plus the p50 wall time of one full scoring pass at each
// batch size. Emits BENCH_cost_batch.json with the per-backend rates and
// two bit-identity verdicts CI asserts: batch-vs-scalar-entry-point
// ("batch_identical_to_scalar") and SIMD-vs-scalar-backend
// ("simd_identical_to_scalar").

#include "bench_common.hpp"

#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "core/serialize.hpp"
#include "core/timer.hpp"
#include "mapping/canonical.hpp"
#include "mapping/legality.hpp"

namespace {

using namespace naas;

/// Bench layer set: the shapes that dominate the paper's benchmark
/// networks (early 3x3 conv, mid 1x1 pointwise, depthwise, strided conv,
/// late FC).
std::vector<nn::Workload> bench_layers() {
  return {
      nn::make_conv("conv3x3", 64, 128, 3, 1, 28),
      nn::make_conv("conv1x1", 256, 256, 1, 1, 14),
      nn::make_dwconv("dw3x3", 192, 3, 1, 28),
      nn::make_conv("strided", 32, 64, 3, 2, 56),
      nn::make_fc("fc", 512, 1000),
  };
}

/// One generation of legal candidates per layer: randomized tiles/orders
/// repaired to capacity — the same distribution the CMA decoder feeds the
/// model (grow_to_fit-style tiles vary per genome; repair keeps them all
/// on the evaluable region, so the struct-of-arrays pass runs end to end).
std::vector<mapping::Mapping> make_candidates(core::Rng& rng,
                                              const arch::ArchConfig& arch,
                                              const nn::Workload& layer,
                                              int count) {
  std::vector<nn::Dim> dims;
  for (nn::Dim d : nn::all_dims()) dims.push_back(d);
  std::vector<mapping::Mapping> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    mapping::Mapping m;
    rng.shuffle(dims);
    for (std::size_t p = 0; p < dims.size(); ++p) m.dram.order[p] = dims[p];
    rng.shuffle(dims);
    for (std::size_t p = 0; p < dims.size(); ++p) m.pe.order[p] = dims[p];
    rng.shuffle(dims);
    for (std::size_t p = 0; p < dims.size(); ++p) m.pe_order[p] = dims[p];
    for (nn::Dim d : nn::all_dims())
      mapping::set_tile(m.dram.tile, d,
                        rng.uniform_int(1, layer.dim_size(d)));
    for (nn::Dim d : nn::all_dims())
      mapping::set_tile(m.pe.tile, d, 1);
    out.push_back(mapping::repair(m, layer, arch));
  }
  return out;
}

std::string serialize_report(const cost::CostReport& r) {
  core::ByteWriter w;
  w.u8(r.legal ? 1 : 0);
  w.str(r.illegal_reason);
  for (double v : {r.macs, r.compute_cycles, r.noc_cycles, r.dram_cycles,
                   r.latency_cycles, r.energy.mac_pj, r.energy.l1_pj,
                   r.energy.l2_pj, r.energy.noc_pj, r.energy.dram_pj,
                   r.energy_nj, r.edp, r.pe_utilization, r.dram_bytes,
                   r.l2_read_bytes, r.l2_write_bytes, r.l1_access_bytes,
                   r.noc_delivery_bytes, r.reduction_hop_bytes})
    w.f64(v);
  return w.bytes();
}

struct Workload {
  nn::Workload layer;
  std::vector<mapping::Mapping> candidates;
  cost::LayerContext ctx;
};

struct Rate {
  std::size_t batch_size = 0;
  double candidates_per_sec = 0;
  double speedup = 0;
  double p50_pass_ms = 0;  ///< median wall time of one full scoring pass
};

/// Runs `pass` (which scores every candidate of every workload once)
/// repeatedly for at least `min_seconds`; returns candidates/second and
/// the p50 per-pass wall time (the jitter-resistant latency headline —
/// means absorb scheduler noise, medians don't).
struct Measurement {
  double candidates_per_sec = 0;
  double p50_pass_ms = 0;
};

template <typename Fn>
Measurement measure(const std::vector<Workload>& work, double min_seconds,
                    const Fn& pass) {
  // One warmup pass populates thread-local scratch and caches.
  pass();
  std::size_t per_pass = 0;
  for (const Workload& w : work) per_pass += w.candidates.size();
  std::vector<double> samples;
  core::Timer total;
  while (total.seconds() < min_seconds) {
    core::Timer t;
    pass();
    samples.push_back(t.seconds());
  }
  double sum = 0;
  for (double s : samples) sum += s;
  std::sort(samples.begin(), samples.end());
  Measurement m;
  m.candidates_per_sec =
      sum > 0 ? static_cast<double>(samples.size()) *
                    static_cast<double>(per_pass) / sum
              : 0;
  m.p50_pass_ms =
      samples.empty() ? 0 : samples[samples.size() / 2] * 1000.0;
  return m;
}

/// Measures evaluate_batch candidates/s and p50 pass time for one model
/// at one batch size.
Rate measure_batched(const cost::CostModel& model,
                     const std::vector<Workload>& work, std::size_t bs,
                     double min_seconds) {
  Rate r;
  r.batch_size = bs;
  std::vector<cost::CostReport> reports;
  for (const Workload& w : work)
    reports.resize(std::max(reports.size(), w.candidates.size()));
  const Measurement m = measure(work, min_seconds, [&] {
    for (const Workload& w : work) {
      for (std::size_t lo = 0; lo < w.candidates.size(); lo += bs) {
        const std::size_t len = std::min(bs, w.candidates.size() - lo);
        model.evaluate_batch(
            w.ctx,
            std::span<const mapping::Mapping>(w.candidates).subspan(lo, len),
            std::span<cost::CostReport>(reports).subspan(0, len));
      }
      benchmark::DoNotOptimize(reports.data());
    }
  });
  r.candidates_per_sec = m.candidates_per_sec;
  r.p50_pass_ms = m.p50_pass_ms;
  return r;
}

/// Per-backend result block for the JSON report.
struct BackendRates {
  std::string name;
  std::vector<Rate> rates;
};

void reproduce_cost_batch() {
  bench::print_header(
      "Batched cost model: scalar vs struct-of-arrays generation scoring");

  const cost::CostModel model;
  const arch::ArchConfig arch = arch::nvdla_256_arch();
  core::Rng rng(static_cast<std::uint64_t>(core::env_int("NAAS_BENCH_SEED",
                                                         1)));
  constexpr int kCandidatesPerLayer = 192;  // divisible by 64, 8, and 1

  std::vector<Workload> work;
  for (const nn::Workload& layer : bench_layers())
    work.push_back({layer,
                    make_candidates(rng, arch, layer, kCandidatesPerLayer),
                    model.make_context(arch, layer)});

  // The backend roster: the scalar reference plus every SIMD backend this
  // build + CPU can actually run.
  std::vector<cost::BackendKind> kinds = {cost::BackendKind::kScalar};
  for (cost::BackendKind k :
       {cost::BackendKind::kAvx2, cost::BackendKind::kNeon})
    if (cost::backend_available(k)) kinds.push_back(k);

  // Bit-identity first, on every backend: every batch size must reproduce
  // the per-candidate scalar reports byte for byte. `identical` covers the
  // default model's batch-vs-scalar-entry-point invariant (the historical
  // CI gate); `simd_identical` covers SIMD-backend-vs-scalar-backend.
  bool identical = true;
  bool simd_identical = true;
  const std::size_t batch_sizes[] = {1, 8, 64};
  for (const Workload& w : work) {
    std::vector<std::string> scalar;
    for (const auto& m : w.candidates)
      scalar.push_back(serialize_report(model.evaluate(arch, w.layer, m)));
    for (cost::BackendKind kind : kinds) {
      const cost::CostModel backend_model(cost::EnergyModel{}, kind);
      for (std::size_t bs : batch_sizes) {
        std::vector<cost::CostReport> reports(w.candidates.size());
        for (std::size_t lo = 0; lo < w.candidates.size(); lo += bs) {
          const std::size_t len = std::min(bs, w.candidates.size() - lo);
          backend_model.evaluate_batch(
              w.ctx,
              std::span<const mapping::Mapping>(w.candidates)
                  .subspan(lo, len),
              std::span<cost::CostReport>(reports).subspan(lo, len));
        }
        for (std::size_t i = 0; i < reports.size(); ++i)
          if (serialize_report(reports[i]) != scalar[i]) {
            if (kind == cost::BackendKind::kScalar) identical = false;
            else simd_identical = false;
          }
      }
    }
  }

  const double kMinSeconds = 0.25;
  const Measurement scalar_m = measure(work, kMinSeconds, [&] {
    for (const Workload& w : work) {
      cost::CostReport rep;
      for (const auto& m : w.candidates) {
        rep = model.evaluate(arch, w.layer, m);
        benchmark::DoNotOptimize(rep.edp);
      }
    }
  });
  const double scalar_rate = scalar_m.candidates_per_sec;

  // Per-backend batched throughput + p50 pass latency.
  std::vector<BackendRates> backends;
  for (cost::BackendKind kind : kinds) {
    const cost::CostModel backend_model(cost::EnergyModel{}, kind);
    BackendRates br;
    br.name = backend_model.backend_name();
    for (std::size_t bs : batch_sizes) {
      Rate r = measure_batched(backend_model, work, bs, kMinSeconds);
      r.speedup = scalar_rate > 0 ? r.candidates_per_sec / scalar_rate : 0;
      br.rates.push_back(r);
    }
    backends.push_back(std::move(br));
  }

  core::Table t({"Path", "Backend", "Batch", "Candidates/s", "Speedup",
                 "p50 pass (ms)", "Identical to scalar"});
  t.add_row({"scalar evaluate()", "-", "1",
             core::Table::fmt_int(static_cast<long long>(scalar_rate)),
             "1.00", core::Table::fmt(scalar_m.p50_pass_ms, 3),
             "(reference)"});
  for (const BackendRates& br : backends)
    for (const Rate& r : br.rates)
      t.add_row({"evaluate_batch", br.name,
                 core::Table::fmt_int(static_cast<long long>(r.batch_size)),
                 core::Table::fmt_int(
                     static_cast<long long>(r.candidates_per_sec)),
                 core::Table::fmt(r.speedup, 2),
                 core::Table::fmt(r.p50_pass_ms, 3),
                 (br.name == "scalar" ? identical : simd_identical)
                     ? "yes"
                     : "NO (BUG)"});
  std::printf("%s\n", t.to_string().c_str());

  FILE* f = std::fopen("BENCH_cost_batch.json", "w");
  if (!f) {
    std::printf("could not open BENCH_cost_batch.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"cost_batch\",\n");
  std::fprintf(f, "  \"arch\": \"%s\",\n", arch.name.c_str());
  std::fprintf(f, "  \"layers\": %d,\n", static_cast<int>(work.size()));
  std::fprintf(f, "  \"candidates_per_layer\": %d,\n", kCandidatesPerLayer);
  std::fprintf(f, "  \"default_backend\": \"%s\",\n", model.backend_name());
  std::fprintf(f, "  \"scalar_candidates_per_sec\": %.1f,\n", scalar_rate);
  // The default model's batched rates (backwards-compatible surface).
  const BackendRates& default_rates =
      [&]() -> const BackendRates& {
    for (const BackendRates& br : backends)
      if (br.name == model.backend_name()) return br;
    return backends.front();
  }();
  std::fprintf(f, "  \"batched\": [\n");
  for (std::size_t i = 0; i < default_rates.rates.size(); ++i) {
    const Rate& r = default_rates.rates[i];
    std::fprintf(f,
                 "    {\"batch_size\": %d, \"candidates_per_sec\": %.1f, "
                 "\"speedup_vs_scalar\": %.3f, \"p50_pass_ms\": %.4f}%s\n",
                 static_cast<int>(r.batch_size), r.candidates_per_sec,
                 r.speedup, r.p50_pass_ms,
                 i + 1 < default_rates.rates.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"backends\": [\n");
  for (std::size_t b = 0; b < backends.size(); ++b) {
    const BackendRates& br = backends[b];
    std::fprintf(f, "    {\"name\": \"%s\", \"batched\": [\n",
                 br.name.c_str());
    for (std::size_t i = 0; i < br.rates.size(); ++i) {
      const Rate& r = br.rates[i];
      std::fprintf(f,
                   "      {\"batch_size\": %d, \"candidates_per_sec\": %.1f, "
                   "\"speedup_vs_scalar\": %.3f, \"p50_pass_ms\": %.4f}%s\n",
                   static_cast<int>(r.batch_size), r.candidates_per_sec,
                   r.speedup, r.p50_pass_ms,
                   i + 1 < br.rates.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", b + 1 < backends.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"batch_identical_to_scalar\": %s,\n",
               identical ? "true" : "false");
  std::fprintf(f, "  \"simd_identical_to_scalar\": %s\n",
               simd_identical ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_cost_batch.json\n");
}

void BM_EvaluateScalar(benchmark::State& state) {
  const cost::CostModel model;
  const arch::ArchConfig arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("c", 64, 128, 3, 1, 28);
  core::Rng rng(1);
  const auto cands = make_candidates(rng, arch, layer, 64);
  for (auto _ : state) {
    for (const auto& m : cands) {
      const auto rep = model.evaluate(arch, layer, m);
      benchmark::DoNotOptimize(rep.edp);
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(cands.size()));
}
BENCHMARK(BM_EvaluateScalar)->Unit(benchmark::kMicrosecond);

void BM_EvaluateBatch(benchmark::State& state) {
  const cost::CostModel model;
  const arch::ArchConfig arch = arch::nvdla_256_arch();
  const nn::Workload layer = nn::make_conv("c", 64, 128, 3, 1, 28);
  core::Rng rng(1);
  const auto cands = make_candidates(rng, arch, layer, 64);
  const cost::LayerContext ctx = model.make_context(arch, layer);
  const std::size_t bs = static_cast<std::size_t>(state.range(0));
  std::vector<cost::CostReport> reports(cands.size());
  for (auto _ : state) {
    for (std::size_t lo = 0; lo < cands.size(); lo += bs) {
      const std::size_t len = std::min(bs, cands.size() - lo);
      model.evaluate_batch(
          ctx, std::span<const mapping::Mapping>(cands).subspan(lo, len),
          std::span<cost::CostReport>(reports).subspan(lo, len));
    }
    benchmark::DoNotOptimize(reports.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<long long>(cands.size()));
}
BENCHMARK(BM_EvaluateBatch)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_cost_batch();
  return naas::bench::run_microbenchmarks(argc, argv);
}
