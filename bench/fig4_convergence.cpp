// Figure 4: population-mean EDP versus hardware-search iteration, NAAS
// (CMA-ES) versus random search. The paper shows NAAS's mean decreasing by
// more than an order of magnitude while random search stays flat.
//
// Scenario: MobileNetV2 under the Eyeriss resource envelope (a
// representative small-model deployment).

#include "bench_common.hpp"
#include "search/random_search.hpp"

namespace {

using namespace naas;

void reproduce_fig4(const bench::Budget& budget) {
  bench::print_header(
      "Fig. 4: normalized population-mean EDP vs search iteration");

  const cost::CostModel model;
  const std::vector<nn::Network> nets{nn::make_mobilenet_v2()};

  search::NaasOptions opts = budget.naas_options(arch::eyeriss_resources());
  opts.iterations = std::max(opts.iterations, 15);  // the figure's x-axis

  const auto naas = search::run_naas(model, opts, nets);
  const auto rand = search::run_random_search(model, opts, nets);

  // Normalize both series by the random-search first-iteration mean, as the
  // figure normalizes to the initial population.
  const double norm = rand.population_mean_edp.empty()
                          ? 1.0
                          : rand.population_mean_edp.front();
  core::Table t({"Iteration", "NAAS mean EDP", "Random mean EDP",
                 "NAAS best EDP"});
  for (std::size_t i = 0; i < naas.population_mean_edp.size(); ++i) {
    const double r = i < rand.population_mean_edp.size()
                         ? rand.population_mean_edp[i] / norm
                         : 0.0;
    t.add_row({std::to_string(i + 1),
               core::Table::fmt(naas.population_mean_edp[i] / norm, 3),
               core::Table::fmt(r, 3),
               core::Table::fmt(naas.population_best_edp[i] / norm, 3)});
  }
  std::printf("%s\n", t.to_string().c_str());

  const double naas_drop = naas.population_mean_edp.front() /
                           naas.population_mean_edp.back();
  const double rand_drop = rand.population_mean_edp.front() /
                           rand.population_mean_edp.back();
  std::printf("NAAS mean improves %.1fx across iterations; random search "
              "%.1fx (paper: NAAS decreases steadily, random stays high)\n",
              naas_drop, rand_drop);
}

void BM_NaasIteration(benchmark::State& state) {
  const cost::CostModel model;
  const std::vector<nn::Network> nets{nn::make_cifar_net()};
  for (auto _ : state) {
    search::NaasOptions opts;
    opts.resources = arch::eyeriss_resources();
    opts.population = 6;
    opts.iterations = 1;
    opts.mapping.population = 6;
    opts.mapping.iterations = 3;
    const auto res = search::run_naas(model, opts, nets);
    benchmark::DoNotOptimize(res.best_geomean_edp);
  }
}
BENCHMARK(BM_NaasIteration)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig4(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
