// Figure 10: accuracy vs normalized EDP on ImageNet (batch 1) under the
// Eyeriss resource envelope. Four points:
//   1. Eyeriss running ResNet50 (the 1.0 EDP reference, 76.3% top-1)
//   2. NHAS on Eyeriss resources (NN + sizing search; its quantized net's
//      published accuracy is 75.2%)
//   3. NAAS accelerator-compiler co-search, fixed ResNet50 (3.01x lower
//      EDP than NHAS in the paper)
//   4. NAAS accelerator-compiler-NN co-search (4.88x total EDP reduction,
//      +2.7% top-1 over the baseline)

#include "bench_common.hpp"

#include "baselines/nhas.hpp"
#include "nas/nas_search.hpp"
#include "nn/accuracy_model.hpp"
#include "nn/ofa_space.hpp"

namespace {

using namespace naas;

void reproduce_fig10(const bench::Budget& budget) {
  bench::print_header(
      "Fig. 10: accuracy vs normalized EDP under Eyeriss resources");

  const cost::CostModel model;
  const auto rc = arch::eyeriss_resources();
  const auto resnet =
      nn::OfaSpace{}.to_network(nn::OfaSpace::resnet50_config());

  // Point 1: the reference.
  const auto base =
      bench::baseline_cost_stock(model, arch::eyeriss_arch(), resnet);
  const double norm = base.edp;

  core::Table t({"Design point", "Top-1 (%)", "Normalized EDP",
                 "EDP reduction"});
  t.add_row({"Eyeriss + ResNet50",
             core::Table::fmt(nn::AccuracyPredictor::kResNet50Top1, 1),
             "1.00", "1.00"});

  nas::CoSearchOptions co;
  co.resources = rc;
  co.hw_population = budget.hw_population;
  co.hw_iterations = budget.hw_iterations;
  co.seed = budget.seed;
  co.mapping.population = budget.map_population;
  co.mapping.iterations = budget.map_iterations;
  co.subnet.min_accuracy = 75.0;
  co.subnet.population = 8;
  co.subnet.iterations = 4;

  // Point 2: NHAS (NN + sizing only).
  const auto nhas = baselines::run_nhas(model, co);
  if (std::isfinite(nhas.best_edp)) {
    t.add_row({"NHAS on Eyeriss resources",
               core::Table::fmt(nn::AccuracyPredictor::kNhasTop1, 1),
               core::Table::fmt(nhas.best_edp / norm, 3),
               core::Table::fmt(norm / nhas.best_edp, 2)});
  }

  // Point 3: NAAS accelerator-compiler co-search with the net fixed.
  const auto accel_only =
      search::run_naas(model, budget.naas_options(rc), {resnet});
  double accel_edp = 0;
  if (std::isfinite(accel_only.best_geomean_edp)) {
    accel_edp = accel_only.best_networks[0].edp;
    t.add_row({"NAAS (accelerator-compiler)",
               core::Table::fmt(nn::AccuracyPredictor::kResNet50Top1, 1),
               core::Table::fmt(accel_edp / norm, 3),
               core::Table::fmt(norm / accel_edp, 2)});
  }

  // Point 4: the full three-level co-search, accuracy floor near the OFA
  // optimum so the searched subnet keeps the +2.7% headline.
  nas::CoSearchOptions full = co;
  full.subnet.min_accuracy = 78.6;
  const auto joint = nas::run_cosearch(model, full);
  if (std::isfinite(joint.best_edp)) {
    t.add_row({"NAAS (accelerator-compiler-NN)",
               core::Table::fmt(joint.best_accuracy, 1),
               core::Table::fmt(joint.best_edp / norm, 3),
               core::Table::fmt(norm / joint.best_edp, 2)});
  }

  std::printf("%s\n", t.to_string().c_str());
  if (std::isfinite(nhas.best_edp) && accel_edp > 0) {
    std::printf("NAAS (accel-compiler) vs NHAS: %.2fx EDP  (paper: 3.01x)\n",
                nhas.best_edp / accel_edp);
  }
  if (std::isfinite(joint.best_edp)) {
    std::printf("NAAS+NAS total reduction: %.2fx with +%.1f%% top-1  "
                "(paper: 4.88x, +2.7%%)\n",
                norm / joint.best_edp,
                joint.best_accuracy - nn::AccuracyPredictor::kResNet50Top1);
  }
}

void BM_SubnetMaterialization(benchmark::State& state) {
  const nn::OfaSpace space;
  core::Rng rng(5);
  for (auto _ : state) {
    const auto cfg = space.sample(rng);
    const auto net = space.to_network(cfg);
    benchmark::DoNotOptimize(net.total_macs());
  }
}
BENCHMARK(BM_SubnetMaterialization);

void BM_AccuracyPrediction(benchmark::State& state) {
  const nn::OfaSpace space;
  const nn::AccuracyPredictor predictor;
  core::Rng rng(7);
  for (auto _ : state) {
    const auto cfg = space.sample(rng);
    benchmark::DoNotOptimize(predictor.predict(cfg));
  }
}
BENCHMARK(BM_AccuracyPrediction);

}  // namespace

int main(int argc, char** argv) {
  reproduce_fig10(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
