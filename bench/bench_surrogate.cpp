// Analytical surrogate pruning: run_naas with --surrogate off vs prune on
// the same budget. Emits BENCH_surrogate.json for CI trend tracking.
//
// Two properties are asserted, not assumed:
//  - surrogate_never_changed_best: the pruned run returns exactly the
//    surrogate-off best (EDP and architecture fingerprint) — the roofline
//    bound is exact, and the rank-safe deferral in run_naas keeps even the
//    CMA trajectory bit-identical, so pruning can only skip work, never
//    steer the search;
//  - prune_thread_invariant: the pruned run's full outcome and meters are
//    identical at 1 and 4 threads (the kept/rescued split is decided
//    against deterministic rank data at structural points).
// The perf story is mapping_searches_saved: every pruned candidate skips
// its entire per-layer mapping search for the cost of a closed-form bound.

#include "bench_common.hpp"

#include <cstdio>

#include "nn/layer.hpp"
#include "search/surrogate.hpp"

namespace {

using namespace naas;

/// Same mixed-layer workload as bench_async_pipeline: heterogeneous layer
/// costs make the skipped mapping searches expensive enough to matter.
nn::Network mixed_network() {
  nn::Network net("bench-mixed", {});
  net.add(nn::make_conv("stem", 3, 64, 7, 2, 112));
  net.add(nn::make_conv("mid", 64, 128, 3, 1, 28));
  net.add(nn::make_dwconv("dw", 96, 3, 1, 56));
  net.add(nn::make_conv("tail", 128, 256, 3, 1, 14));
  net.add(nn::make_fc("fc", 1024, 1000));
  return net;
}

bool same_outcome(const search::NaasResult& a, const search::NaasResult& b) {
  return a.best_geomean_edp == b.best_geomean_edp &&
         search::arch_fingerprint(a.best_arch) ==
             search::arch_fingerprint(b.best_arch);
}

void reproduce_surrogate(const bench::Budget& budget) {
  bench::print_header(
      "Surrogate pruning: roofline lower bound vs full mapping search");

  const cost::CostModel model;
  const std::vector<nn::Network> nets{mixed_network()};
  search::NaasOptions nopts = budget.naas_options(arch::eyeriss_resources());

  search::NaasOptions off = nopts;
  off.surrogate = search::SurrogateMode::kOff;
  off.num_threads = 1;
  const auto res_off = search::run_naas(model, off, nets);

  search::NaasOptions prune = nopts;
  prune.surrogate = search::SurrogateMode::kPrune;
  prune.num_threads = 1;
  const auto res_prune1 = search::run_naas(model, prune, nets);

  search::NaasOptions prune4 = prune;
  prune4.num_threads = 4;
  const auto res_prune4 = search::run_naas(model, prune4, nets);

  const bool never_changed_best = same_outcome(res_off, res_prune1) &&
                                  same_outcome(res_off, res_prune4);
  const bool thread_invariant =
      res_prune1.mapping_searches == res_prune4.mapping_searches &&
      res_prune1.surrogate_consults == res_prune4.surrogate_consults &&
      res_prune1.surrogate_pruned == res_prune4.surrogate_pruned &&
      res_prune1.population_best_edp == res_prune4.population_best_edp;
  const long long saved = res_off.mapping_searches - res_prune1.mapping_searches;

  core::Table t({"Mode", "Mapping searches", "Consults", "Pruned",
                 "Best geomean EDP"});
  t.add_row({"off", core::Table::fmt_int(res_off.mapping_searches), "0", "0",
             core::Table::fmt(res_off.best_geomean_edp, 4)});
  t.add_row({"prune (1 thr)", core::Table::fmt_int(res_prune1.mapping_searches),
             core::Table::fmt_int(res_prune1.surrogate_consults),
             core::Table::fmt_int(res_prune1.surrogate_pruned),
             core::Table::fmt(res_prune1.best_geomean_edp, 4)});
  t.add_row({"prune (4 thr)", core::Table::fmt_int(res_prune4.mapping_searches),
             core::Table::fmt_int(res_prune4.surrogate_consults),
             core::Table::fmt_int(res_prune4.surrogate_pruned),
             core::Table::fmt(res_prune4.best_geomean_edp, 4)});
  std::printf("%s\n", t.to_string().c_str());
  std::printf("mapping searches saved by pruning: %lld\n", saved);
  std::printf("surrogate never changed best: %s\n",
              never_changed_best ? "yes" : "NO (BUG)");
  std::printf("prune run thread-invariant: %s\n",
              thread_invariant ? "yes" : "NO (BUG)");

  FILE* f = std::fopen("BENCH_surrogate.json", "w");
  if (!f) {
    std::printf("could not open BENCH_surrogate.json for writing\n");
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"surrogate\",\n");
  std::fprintf(f, "  \"scenario\": \"mixed_layer_eyeriss\",\n");
  std::fprintf(f, "  \"network\": \"%s\",\n", nets[0].name().c_str());
  std::fprintf(f, "  \"mapping_searches_off\": %lld,\n",
               res_off.mapping_searches);
  std::fprintf(f, "  \"mapping_searches_prune\": %lld,\n",
               res_prune1.mapping_searches);
  std::fprintf(f, "  \"mapping_searches_saved\": %lld,\n", saved);
  std::fprintf(f, "  \"surrogate_consults\": %lld,\n",
               res_prune1.surrogate_consults);
  std::fprintf(f, "  \"surrogate_pruned\": %lld,\n",
               res_prune1.surrogate_pruned);
  std::fprintf(f, "  \"surrogate_never_changed_best\": %s,\n",
               never_changed_best ? "true" : "false");
  std::fprintf(f, "  \"prune_thread_invariant\": %s\n",
               thread_invariant ? "true" : "false");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_surrogate.json\n");
}

/// Closed-form roofline bound for a whole network: the per-candidate cost
/// of consulting the surrogate gate.
void BM_SurrogateNetworkBound(benchmark::State& state) {
  const cost::CostModel model;
  const nn::Network net = mixed_network();
  const arch::ArchConfig arch = arch::eyeriss_arch();
  for (auto _ : state) {
    const double lb = search::surrogate_network_edp_bound(model, arch, net);
    benchmark::DoNotOptimize(lb);
  }
}
BENCHMARK(BM_SurrogateNetworkBound)->Unit(benchmark::kMicrosecond);

/// The work the bound replaces: a full per-layer mapping search for the
/// same (arch, network) pair at the bench's mapping budget.
void BM_FullMappingSearch(benchmark::State& state) {
  const cost::CostModel model;
  const nn::Network net = mixed_network();
  const arch::ArchConfig arch = arch::eyeriss_arch();
  search::MappingSearchOptions mopts;
  mopts.population = 8;
  mopts.iterations = 5;
  for (auto _ : state) {
    search::ArchEvaluator evaluator(model, mopts);
    const auto nc = evaluator.evaluate(arch, net);
    benchmark::DoNotOptimize(nc.edp);
  }
}
BENCHMARK(BM_FullMappingSearch)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  reproduce_surrogate(naas::bench::Budget::from_env());
  return naas::bench::run_microbenchmarks(argc, argv);
}
